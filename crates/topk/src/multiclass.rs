//! Multi-class top-k mining — the five methods of Fig. 7 and every ablation
//! cell of Table III.
//!
//! | Method | Scheme |
//! |---|---|
//! | `Hec` | user partition per class, vanilla PEM each (§II-D) |
//! | `PtjPem` | PEM over the joint `(C, I)` code space; optional VP |
//! | `PtjShuffled` | the shuffling scheme over joint pairs; optional VP |
//! | `PtsPem` | GRR label routing + per-class PEM; optional VP / global candidates |
//! | `PtsShuffled` | Algorithms 1 & 2: global candidate generation on an `a·N` sample, classwise shuffled pruning, CP or VP final round chosen by the `b` noise test |
//!
//! ### Budget accounting
//! HEC/PTJ methods spend the full ε on the item report. PTS methods spend
//! ε₁ once on the GRR label (used for routing and class-size estimation)
//! and ε₂ on the single item report each user submits — every user reports
//! in exactly one round, so the total stays ε = ε₁ + ε₂.

use std::collections::HashMap;

use rand::Rng;

use mcim_core::{CommStats, Domains, LabelItem, ValidityInput, ValidityPerturbation, VpAggregator};
use mcim_oracles::exec::{Exec, Executor};
use mcim_oracles::hash::SplitMix64;
use mcim_oracles::stream::{drain_source, ReportSource, SliceSource};
use mcim_oracles::{
    calibrate::unbiased_count, parallel, Aggregator, Eps, Error, Grr, Oracle, Result,
};

use crate::pem::{Pem, PemConfig, PemEngine, PemOutcome};
use crate::shuffle::ShuffleEngine;

/// Which form of Algorithm 2's noise test gates the final CP round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NoiseTest {
    /// The paper's printed test: `|D_C| > b·|D'_C|` → fall back to VP.
    PaperRatio,
    /// The test's stated intent (default): fall back when the label-flip
    /// noise in the routed group exceeds `b ×` its valid mass `p₁·n̂_C`.
    /// Equivalent on imbalanced classes; additionally trips for many
    /// uniform classes where `p₁` collapses (DESIGN.md §4).
    #[default]
    NoiseToValid,
}

/// Tuning parameters shared by all multi-class top-k methods.
#[derive(Debug, Clone, Copy)]
pub struct TopKConfig {
    /// Items to mine per class.
    pub k: usize,
    /// Total privacy budget ε.
    pub eps: Eps,
    /// ε₁/ε for the PTS family (paper default 0.5; Fig. 11 sweeps this).
    pub label_frac: f64,
    /// Fraction `a` of users spent on global candidate generation
    /// (Algorithm 1; paper default 0.2, Fig. 12 sweeps it).
    pub sample_frac: f64,
    /// Noise threshold `b`: CP is applied only when the collected class
    /// group is at most `b ×` the estimated class size (Algorithm 2 line 8;
    /// paper default 2, Fig. 12 sweeps it).
    pub noise_factor: f64,
    /// PEM prefix extension bits per round (`m`, default 1).
    pub extend_bits: u32,
    /// Noise-test variant for Algorithm 2's final round.
    pub noise_test: NoiseTest,
}

impl TopKConfig {
    /// Paper-default configuration.
    pub fn new(k: usize, eps: Eps) -> Self {
        TopKConfig {
            k,
            eps,
            label_frac: 0.5,
            sample_frac: 0.2,
            noise_factor: 2.0,
            extend_bits: 1,
            noise_test: NoiseTest::default(),
        }
    }
}

/// Method selector (Fig. 7 legend + Table III ablation cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKMethod {
    /// Handle-each-class + PEM.
    Hec,
    /// Joint-domain PEM.
    PtjPem {
        /// Replace random-candidate substitution with validity perturbation.
        validity: bool,
    },
    /// Joint-domain shuffling scheme.
    PtjShuffled {
        /// Use validity perturbation for pruned pairs.
        validity: bool,
    },
    /// Label-routed per-class PEM.
    PtsPem {
        /// Use validity perturbation for pruned items.
        validity: bool,
        /// Initialize per-class candidates from a global mining phase.
        global: bool,
    },
    /// Label-routed shuffling scheme (Algorithms 1 & 2 when all flags set).
    PtsShuffled {
        /// Use validity perturbation for pruned items.
        validity: bool,
        /// Run Algorithm 1's global candidate generation.
        global: bool,
        /// Apply correlated perturbation in the final round (implies
        /// validity).
        correlated: bool,
    },
}

impl TopKMethod {
    /// Display name (matches the paper's figure legends).
    pub fn name(&self) -> String {
        match *self {
            TopKMethod::Hec => "HEC".into(),
            TopKMethod::PtjPem { validity: false } => "PTJ".into(),
            TopKMethod::PtjPem { validity: true } => "PTJ+VP".into(),
            TopKMethod::PtjShuffled { validity: false } => "PTJ+Shuffling".into(),
            TopKMethod::PtjShuffled { validity: true } => "PTJ-Shuffling+VP".into(),
            TopKMethod::PtsPem { validity, global } => {
                let mut s = String::from("PTS");
                if global {
                    s.push_str("+Global");
                }
                if validity {
                    s.push_str("+VP");
                }
                s
            }
            TopKMethod::PtsShuffled {
                validity,
                global,
                correlated,
            } => {
                if validity && global && correlated {
                    "PTS-Shuffling+VP+CP".into()
                } else {
                    let mut s = String::from("PTS+Shuffling");
                    if global {
                        s.push_str("+Global");
                    }
                    if validity {
                        s.push_str("+VP");
                    }
                    if correlated {
                        s.push_str("+CP");
                    }
                    s
                }
            }
        }
    }

    /// The five methods of Fig. 7 / 8 / 9 / 10.
    pub fn fig7_set() -> [TopKMethod; 5] {
        [
            TopKMethod::Hec,
            TopKMethod::PtjPem { validity: false },
            TopKMethod::PtjShuffled { validity: true },
            TopKMethod::PtsPem {
                validity: false,
                global: false,
            },
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true,
            },
        ]
    }

    /// Table III PTJ row: baseline, +VP, +Shuffling, all.
    pub fn table3_ptj_set() -> [TopKMethod; 4] {
        [
            TopKMethod::PtjPem { validity: false },
            TopKMethod::PtjPem { validity: true },
            TopKMethod::PtjShuffled { validity: false },
            TopKMethod::PtjShuffled { validity: true },
        ]
    }

    /// Table III PTS row: baseline, +Global, +VP, +Shuffling, all.
    pub fn table3_pts_set() -> [TopKMethod; 5] {
        [
            TopKMethod::PtsPem {
                validity: false,
                global: false,
            },
            TopKMethod::PtsPem {
                validity: false,
                global: true,
            },
            TopKMethod::PtsPem {
                validity: true,
                global: false,
            },
            TopKMethod::PtsShuffled {
                validity: false,
                global: false,
                correlated: false,
            },
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true,
            },
        ]
    }
}

/// Result of one multi-class top-k run.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// Mined items per class (descending score; may be shorter than k when
    /// a class ran out of candidates — Fig. 8's failure mode for PTJ).
    pub per_class: Vec<Vec<u32>>,
    /// Uplink communication statistics.
    pub comm: CommStats,
    /// Worst-case downlink bits a single (late-joining) user must receive
    /// before reporting: the current candidate list for PEM methods, or the
    /// accumulated `(seed, bucket state)` history for the shuffling methods
    /// — the communication the paper's Fig. 4 optimizes.
    pub broadcast_bits_per_user: f64,
}

/// Execution pacing for the bulk privatize+aggregate stages: the sharded
/// deterministic runtime of [`parallel`].
///
/// Stage `i` takes the `i`-th seed of a [`SplitMix64`] stream over the
/// plan seed and fans out over fixed-size shards with derived per-shard
/// RNGs, so the mined result is bit-identical for every thread count,
/// chunk size and worker count. Sequential plans are this same runtime
/// pinned to one worker (RNG-contract v2; see `mcim_oracles::stream`).
struct Pace<'r, E: Executor> {
    /// Per-stage seed stream.
    stream: SplitMix64,
    /// Worker thread cap (local fan-out stages).
    threads: usize,
    /// Backend for the PEM stages — in-process threads or the distributed
    /// reducer. The label-routing and shuffling stages stay local: their
    /// folds are output-per-input maps, not mergeable reductions, so there
    /// is nothing for a reducer to merge.
    executor: &'r E,
}

impl<E: Executor> Pace<'_, E> {
    /// A fresh 64-bit seed (shuffle-round seeds, sharded-stage base seeds).
    fn next_seed(&mut self) -> u64 {
        self.stream.next_u64()
    }

    /// GRR-routes a block of labels, recording uplink per user.
    fn route(&mut self, grr: &Grr, labels: &[u32], comm: &mut CommStats) -> Result<Vec<u32>> {
        for _ in labels {
            comm.record(grr.report_bits());
        }
        let base = self.stream.next_u64();
        parallel::try_fill_shards(labels, self.threads, |shard, chunk, slots| {
            let mut rng = parallel::shard_rng(base, shard);
            for (&l, slot) in chunk.iter().zip(slots.iter_mut()) {
                *slot = Some(grr.perturb(l, &mut rng)?);
            }
            Ok(())
        })
    }

    /// Privatizes and aggregates a block of validity-perturbation inputs.
    fn vp_aggregate(
        &mut self,
        vp: &ValidityPerturbation,
        inputs: &[ValidityInput],
        comm: &mut CommStats,
    ) -> Result<VpAggregator> {
        let base = self.stream.next_u64();
        vp_aggregate_batch(vp, inputs, base, self.threads, comm)
    }

    /// Runs one PEM round on a prepared item group.
    fn pem_round(
        &mut self,
        engine: &mut PemEngine,
        eps: Eps,
        items: &[Option<u32>],
    ) -> Result<CommStats> {
        engine.execute_round_on(
            self.executor,
            eps,
            self.stream.next_u64(),
            SliceSource::new(items),
        )
    }

    /// Runs a full single-population PEM mine.
    fn pem_mine(&mut self, pem: &Pem, eps: Eps, items: &[Option<u32>]) -> Result<PemOutcome> {
        pem.execute_on(
            self.executor,
            eps,
            self.stream.next_u64(),
            SliceSource::new(items),
        )
    }
}

/// Runs `method` under an [`Exec`] plan and returns per-class top-k items
/// — the single entry point of the multi-class layer.
///
/// Every mode fans each bulk privatize+aggregate stage out over
/// fixed-size shards with RNG streams derived from the plan seed
/// (RNG-contract v2), so the mined result is a pure function of
/// `(method, config, domains, pairs, seed)` — bit-identical across
/// sequential, batch, stream and distributed execution for every thread
/// count and chunk size (the `MCIM_THREADS` CI matrix locks this in).
///
/// Multi-round mining routes users into per-class groups that later
/// rounds revisit, so the 8-byte pairs themselves are drained into memory
/// (≈ 40 MB at the paper's 5M users) in every mode — but every privatized
/// report still lives only inside the sharded runtime's
/// `O(threads × shard)` buffers, never as an `O(n)` slice, and the
/// pull-based ingestion means the pairs can come straight off disk or a
/// socket instead of a pre-built `Vec`.
pub fn execute<S>(
    method: TopKMethod,
    config: TopKConfig,
    domains: Domains,
    plan: &Exec,
    source: S,
) -> Result<TopKResult>
where
    S: ReportSource<Item = LabelItem>,
{
    execute_on(method, config, domains, &plan.in_process(), source)
}

/// Runs `method` on an explicit [`Executor`] backend — the
/// distributed-reducer seam of the multi-class layer (pass `mcim-dist`'s
/// `Coordinator` to fan the PEM mining stages out across worker
/// processes).
///
/// Stage `i` of the pipeline takes the `i`-th seed of a [`SplitMix64`]
/// stream over the executor's plan seed, exactly like [`execute`] with a
/// sharded plan — the mined result is bit-identical for every conforming
/// executor, thread count, chunk size and worker count. The PEM rounds run
/// on the executor; the label-routing and bucket-shuffling stages fan out
/// on local threads (output-per-input maps have no mergeable partials to
/// reduce).
pub fn execute_on<E, S>(
    method: TopKMethod,
    config: TopKConfig,
    domains: Domains,
    executor: &E,
    mut source: S,
) -> Result<TopKResult>
where
    E: Executor,
    S: ReportSource<Item = LabelItem>,
{
    // PTJ/PTS-Shuffled never reach `Executor::fold`, so the contract gate
    // must also sit here — every multi-class entry point refuses v1 plans.
    executor.plan().validate_contract()?;
    if mcim_obs::enabled() {
        let name = method.name();
        mcim_obs::counter_add(
            &mcim_obs::labeled("mcim_pipeline_runs_total", &[("pipeline", &name)]),
            1,
        );
    }
    let span = mcim_obs::span_with(|| {
        mcim_obs::labeled(
            "mcim_pipeline_duration_seconds",
            &[("pipeline", &method.name())],
        )
    });
    let data = drain_source(&mut source)?;
    let mut pace = Pace {
        stream: SplitMix64::new(executor.plan().base_seed()),
        threads: executor.plan().resolved_threads(),
        executor,
    };
    let result = mine_with(method, config, domains, &data, &mut pace);
    span.finish();
    result
}

fn mine_with<E: Executor>(
    method: TopKMethod,
    config: TopKConfig,
    domains: Domains,
    data: &[LabelItem],
    pace: &mut Pace<'_, E>,
) -> Result<TopKResult> {
    if config.k == 0 {
        return Err(Error::InvalidParameter {
            name: "k",
            constraint: "k >= 1",
        });
    }
    if data.is_empty() {
        return Err(Error::InvalidParameter {
            name: "data",
            constraint: "at least one user required",
        });
    }
    match method {
        TopKMethod::Hec => hec(config, domains, data, pace),
        TopKMethod::PtjPem { validity } => ptj_pem(config, domains, data, validity, pace),
        TopKMethod::PtjShuffled { validity } => ptj_shuffled(config, domains, data, validity, pace),
        TopKMethod::PtsPem { validity, global } => {
            pts_pem(config, domains, data, validity, global, pace)
        }
        TopKMethod::PtsShuffled {
            validity,
            global,
            correlated,
        } => pts_shuffled(config, domains, data, validity, global, correlated, pace),
    }
}

// ---------------------------------------------------------------- HEC --

fn hec<E: Executor>(
    config: TopKConfig,
    domains: Domains,
    data: &[LabelItem],
    pace: &mut Pace<'_, E>,
) -> Result<TopKResult> {
    let c = domains.classes();
    let pem = Pem::new(
        domains.items(),
        PemConfig {
            k: config.k,
            extend_bits: config.extend_bits,
            keep_factor: 2,
            validity: false,
        },
    )?;
    let mut per_class = Vec::with_capacity(c as usize);
    let mut comm = CommStats::default();
    for class in 0..c {
        // Round-robin partition; mismatched labels are invalid.
        let items: Vec<Option<u32>> = data
            .iter()
            .enumerate()
            .filter(|(u, _)| (*u as u32) % c == class)
            .map(|(_, p)| if p.label == class { Some(p.item) } else { None })
            .collect();
        if items.is_empty() {
            per_class.push(Vec::new());
            continue;
        }
        let out = pace.pem_mine(&pem, config.eps, &items)?;
        comm.merge(out.comm);
        per_class.push(out.top);
    }
    Ok(TopKResult {
        per_class,
        comm,
        // HEC broadcasts each round's candidate prefixes.
        broadcast_bits_per_user: pem_broadcast_estimate(domains.items(), config.k),
    })
}

// ---------------------------------------------------------------- PTJ --

fn ptj_pem<E: Executor>(
    config: TopKConfig,
    domains: Domains,
    data: &[LabelItem],
    validity: bool,
    pace: &mut Pace<'_, E>,
) -> Result<TopKResult> {
    let kk = config.k * domains.classes() as usize;
    let pem = Pem::new(
        domains.joint_size(),
        PemConfig {
            k: kk,
            extend_bits: config.extend_bits,
            keep_factor: 2,
            validity,
        },
    )?;
    let items: Vec<Option<u32>> = data.iter().map(|p| Some(domains.joint_index(*p))).collect();
    let out = pace.pem_mine(&pem, config.eps, &items)?;
    Ok(TopKResult {
        per_class: split_joint_ranking(&out.top, domains, config.k),
        comm: out.comm,
        broadcast_bits_per_user: pem_broadcast_estimate(domains.joint_size(), kk),
    })
}

fn ptj_shuffled<E: Executor>(
    config: TopKConfig,
    domains: Domains,
    data: &[LabelItem],
    validity: bool,
    pace: &mut Pace<'_, E>,
) -> Result<TopKResult> {
    let kk = config.k * domains.classes() as usize;
    let buckets = 4 * kk;
    let joint: Vec<u32> = (0..domains.joint_size()).collect();
    let mut engine = ShuffleEngine::new(joint);
    let rounds = ShuffleEngine::total_rounds(domains.joint_size() as usize, kk);
    let mut comm = CommStats::default();
    let chunk_size = data.len().div_ceil(rounds).max(1);
    let mut chunks = data.chunks(chunk_size);

    for _ in 0..rounds.saturating_sub(1) {
        let chunk = chunks.next().unwrap_or(&[]);
        let view = engine.begin_round(pace.next_seed(), buckets);
        let inputs: Vec<Option<u32>> = chunk
            .iter()
            .map(|p| view.bucket_of_item(domains.joint_index(*p)))
            .collect();
        let scores = score_round(
            pace,
            config.eps,
            view.buckets(),
            &inputs,
            validity,
            &mut comm,
        )?;
        engine.complete_round(&view, &scores, 2 * kk);
    }

    // Final round: direct estimation over the surviving pairs.
    let final_chunk = chunks.next().unwrap_or(&[]);
    let cands = engine.candidates().to_vec();
    let index: HashMap<u32, u32> = cands
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    let inputs: Vec<Option<u32>> = final_chunk
        .iter()
        .map(|p| index.get(&domains.joint_index(*p)).copied())
        .collect();
    let scores = score_round(pace, config.eps, cands.len(), &inputs, validity, &mut comm)?;

    let mut ranked: Vec<(u32, f64)> = cands.iter().copied().zip(scores).collect();
    ranked.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let ordered: Vec<u32> = ranked.into_iter().map(|(p, _)| p).collect();
    Ok(TopKResult {
        per_class: split_joint_ranking(&ordered, domains, config.k),
        comm,
        broadcast_bits_per_user: engine.broadcast_bits() as f64,
    })
}

// ---------------------------------------------------------------- PTS --

fn pts_pem<E: Executor>(
    config: TopKConfig,
    domains: Domains,
    data: &[LabelItem],
    validity: bool,
    global: bool,
    pace: &mut Pace<'_, E>,
) -> Result<TopKResult> {
    let (e1, e2) = config.eps.split(config.label_frac)?;
    let grr = Grr::new(e1, domains.classes())?;
    let pem_config = PemConfig {
        k: config.k,
        extend_bits: config.extend_bits,
        keep_factor: 2,
        validity,
    };
    let mut comm = CommStats::default();
    let mut broadcast: f64 = pem_broadcast_estimate(domains.items(), config.k);

    // Optional global candidate phase (the "+Global" optimization): a PEM
    // prefix run over the item domain ignoring labels, mining k·c global
    // candidates for the first ⌊IT/2⌋ rounds.
    let (template, rest): (PemEngine, &[LabelItem]) = if global {
        let global_config = PemConfig {
            k: config.k * domains.classes() as usize,
            ..pem_config
        };
        let mut g_engine = PemEngine::new(domains.items(), global_config)?;
        let total = g_engine.remaining_rounds();
        let it_f = (total / 2).max(1).min(total.saturating_sub(1));
        let (sample, rest) = split_at_frac(data, config.sample_frac);
        if it_f > 0 && !sample.is_empty() {
            let chunk_size = sample.len().div_ceil(it_f).max(1);
            let mut chunks = sample.chunks(chunk_size);
            for _ in 0..it_f {
                let chunk = chunks.next().unwrap_or(&[]);
                // Phase-1 users also perturb labels (class-size estimation;
                // unused by this PEM variant but budget must match).
                for _ in chunk {
                    comm.record(grr.report_bits());
                }
                let items: Vec<Option<u32>> = chunk.iter().map(|p| Some(p.item)).collect();
                let stats = pace.pem_round(&mut g_engine, e2, &items)?;
                comm.merge(stats);
            }
        }
        broadcast = broadcast.max(pem_broadcast_estimate(domains.items(), global_config.k));
        let resumed = PemEngine::resume(
            domains.items(),
            pem_config,
            g_engine.candidates().to_vec(),
            g_engine.prefix_len(),
        )?;
        (resumed, rest)
    } else {
        (PemEngine::new(domains.items(), pem_config)?, data)
    };

    // Route the remaining users by GRR-perturbed label.
    let labels: Vec<u32> = rest.iter().map(|p| p.label).collect();
    let routed = pace.route(&grr, &labels, &mut comm)?;
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); domains.classes() as usize];
    for (p, r) in rest.iter().zip(routed) {
        groups[r as usize].push(p.item);
    }

    let mut per_class = Vec::with_capacity(domains.classes() as usize);
    for items in &groups {
        if items.is_empty() {
            per_class.push(Vec::new());
            continue;
        }
        let mut engine = template.clone();
        let rounds = engine.remaining_rounds();
        let chunk_size = items.len().div_ceil(rounds).max(1);
        let mut chunks = items.chunks(chunk_size);
        for _ in 0..rounds {
            let chunk = chunks.next().unwrap_or(&[]);
            let round_items: Vec<Option<u32>> = chunk.iter().map(|&i| Some(i)).collect();
            let stats = pace.pem_round(&mut engine, e2, &round_items)?;
            comm.merge(stats);
        }
        per_class.push(engine.top_items()?);
    }
    Ok(TopKResult {
        per_class,
        comm,
        broadcast_bits_per_user: broadcast,
    })
}

/// Algorithms 1 & 2 (and their ablations): label-routed shuffled mining.
#[allow(clippy::too_many_arguments)]
fn pts_shuffled<E: Executor>(
    config: TopKConfig,
    domains: Domains,
    data: &[LabelItem],
    validity: bool,
    global: bool,
    correlated: bool,
    pace: &mut Pace<'_, E>,
) -> Result<TopKResult> {
    // CP is built on VP; `correlated` therefore implies validity reports.
    let validity = validity || correlated;
    let (e1, e2) = config.eps.split(config.label_frac)?;
    let grr = Grr::new(e1, domains.classes())?;
    let (p1, q1) = (grr.p(), grr.q());
    let c = domains.classes() as usize;
    let d = domains.items();
    let k = config.k;

    let total_rounds = ShuffleEngine::total_rounds(d as usize, k);
    let it_f = if global {
        (total_rounds / 2).min(total_rounds - 1)
    } else {
        0
    };
    let it_r = total_rounds - it_f;

    let mut comm = CommStats::default();
    let mut engine_global = ShuffleEngine::new((0..d).collect());

    // ---------------- Phase 1: Algorithm 1 (global candidates) ----------
    let (rest, class_frac): (&[LabelItem], Option<Vec<f64>>) = if it_f > 0 {
        let (sample, rest) = split_at_frac(data, config.sample_frac);
        let buckets = 4 * k * c;
        let mut label_tally = vec![0u64; c];
        let chunk_size = sample.len().div_ceil(it_f).max(1);
        let mut chunks = sample.chunks(chunk_size);
        for _ in 0..it_f {
            let chunk = chunks.next().unwrap_or(&[]);
            let view = engine_global.begin_round(pace.next_seed(), buckets);
            let labels: Vec<u32> = chunk.iter().map(|p| p.label).collect();
            for &r in &pace.route(&grr, &labels, &mut comm)? {
                label_tally[r as usize] += 1;
            }
            let inputs: Vec<Option<u32>> =
                chunk.iter().map(|p| view.bucket_of_item(p.item)).collect();
            let scores = score_round(pace, e2, view.buckets(), &inputs, validity, &mut comm)?;
            engine_global.complete_round(&view, &scores, 2 * k * c);
        }
        // Estimated class fractions from the phase-1 perturbed labels
        // (Algorithm 1 line 9): used by the `b` noise test.
        let n1: u64 = label_tally.iter().sum();
        let fracs = label_tally
            .iter()
            .map(|&t| (unbiased_count(t as f64, n1 as f64, p1, q1) / n1 as f64).max(0.0))
            .collect();
        (rest, Some(fracs))
    } else {
        (data, None)
    };

    // ---------------- Phase 2: Algorithm 2 (classwise mining) -----------
    // Route users by perturbed label.
    let labels: Vec<u32> = rest.iter().map(|p| p.label).collect();
    let routed = pace.route(&grr, &labels, &mut comm)?;
    let mut groups: Vec<Vec<&LabelItem>> = vec![Vec::new(); c];
    for (p, r) in rest.iter().zip(routed) {
        groups[r as usize].push(p);
    }
    let n2: usize = groups.iter().map(Vec::len).sum();

    // Class-size estimates |D'_C| over the phase-2 population: from the
    // phase-1 fractions when available, otherwise from the routing tallies.
    let estimated_class_sizes: Vec<f64> = match &class_frac {
        Some(fracs) => fracs.iter().map(|f| f * n2 as f64).collect(),
        None => groups
            .iter()
            .map(|g| unbiased_count(g.len() as f64, n2 as f64, p1, q1).max(0.0))
            .collect(),
    };

    // Per-class pruning rounds, collecting each class's final cohort.
    struct FinalGroup<'a> {
        class: u32,
        users: Vec<&'a LabelItem>,
        candidates: Vec<u32>,
        use_cp: bool,
    }
    let mut finals: Vec<FinalGroup<'_>> = Vec::with_capacity(c);
    // Worst-case per-user downlink: the phase-1 seed/state history plus the
    // deepest per-class history a final-round user must replay.
    let phase1_broadcast = engine_global.broadcast_bits() as f64;
    let mut class_broadcast: f64 = 0.0;
    for (class, group) in groups.iter().enumerate() {
        if group.is_empty() {
            finals.push(FinalGroup {
                class: class as u32,
                users: Vec::new(),
                candidates: engine_global.candidates().to_vec(),
                use_cp: false,
            });
            continue;
        }
        let mut engine = ShuffleEngine::new(engine_global.candidates().to_vec());
        let chunk_size = group.len().div_ceil(it_r).max(1);
        let mut chunks = group.chunks(chunk_size);
        for _ in 0..it_r - 1 {
            let chunk = chunks.next().unwrap_or(&[]);
            let view = engine.begin_round(pace.next_seed(), 4 * k);
            // Validity here is label-free: pruning is the only invalidity,
            // so globally frequent items from mislabeled users still count
            // (§VII-E's "benefit from globally frequent items").
            let inputs: Vec<Option<u32>> =
                chunk.iter().map(|p| view.bucket_of_item(p.item)).collect();
            let scores = score_round(pace, e2, view.buckets(), &inputs, validity, &mut comm)?;
            engine.complete_round(&view, &scores, 2 * k);
        }
        // Algorithm 2 line 8: the `b` noise test, in the configured form
        // (see `NoiseTest` and DESIGN.md §4 for why the default deviates
        // from the printed formula).
        let cp_feasible = match config.noise_test {
            NoiseTest::PaperRatio => {
                (group.len() as f64) <= config.noise_factor * estimated_class_sizes[class].max(1.0)
            }
            NoiseTest::NoiseToValid => {
                let valid = (grr.p() * estimated_class_sizes[class]).max(1.0);
                let noise = (group.len() as f64 - valid).max(0.0);
                noise <= config.noise_factor * valid
            }
        };
        let use_cp = correlated && cp_feasible;
        finals.push(FinalGroup {
            class: class as u32,
            users: chunks.next().unwrap_or(&[]).to_vec(),
            candidates: engine.candidates().to_vec(),
            use_cp,
        });
        class_broadcast = class_broadcast.max(engine.broadcast_bits() as f64);
    }

    // Final round. CP classes need the cohort-wide total N_f for Eq. (4).
    let n_final: usize = finals.iter().map(|f| f.users.len()).sum();
    let mut per_class: Vec<Vec<u32>> = vec![Vec::new(); c];

    // Pieces shared by both pacing arms, so the estimator math cannot
    // silently diverge between them.
    let cand_index = |fg: &FinalGroup<'_>| -> HashMap<u32, u32> {
        fg.candidates
            .iter()
            .enumerate()
            .map(|(i, &it)| (it, i as u32))
            .collect()
    };
    // Correlated perturbation: validity requires the routed label to match
    // the true label AND the item to have survived pruning.
    let cp_inputs = |fg: &FinalGroup<'_>, index: &HashMap<u32, u32>| -> Vec<ValidityInput> {
        fg.users
            .iter()
            .map(|p| match index.get(&p.item) {
                Some(&idx) if p.label == fg.class => ValidityInput::Valid(idx),
                _ => ValidityInput::Invalid,
            })
            .collect()
    };
    // Eq. (4) with N = final cohort size and ñ_C = |F_C| (every member of
    // this group was routed to this class).
    let cp_scores = |fg: &FinalGroup<'_>, vp: &ValidityPerturbation, agg: &VpAggregator| {
        let (p2, q2) = (vp.p(), vp.q());
        let n_f = n_final as f64;
        let n_hat = unbiased_count(fg.users.len() as f64, n_f, p1, q1);
        let denom = p1 * (1.0 - q2) * (p2 - q2);
        let correction = n_hat * q2 * (p1 * (1.0 - q2) - q1 * (1.0 - p2));
        agg.raw_counts()
            .iter()
            .map(|&cnt| (cnt as f64 - n_f * q1 * q2 * (1.0 - p2) - correction) / denom)
            .collect::<Vec<f64>>()
    };
    let item_inputs = |fg: &FinalGroup<'_>, index: &HashMap<u32, u32>| -> Vec<Option<u32>> {
        fg.users
            .iter()
            .map(|p| index.get(&p.item).copied())
            .collect()
    };
    let rank_top = |cands: &[u32], scores: Vec<f64>| -> Vec<u32> {
        let mut ranked: Vec<(u32, f64)> = cands.iter().copied().zip(scores).collect();
        ranked.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked.into_iter().take(k).map(|(it, _)| it).collect()
    };

    // One class's final-round scores on the sharded runtime, under an
    // explicit base seed (so classes can run concurrently).
    let class_scores_batch =
        |fg: &FinalGroup<'_>, seed: u64, threads: usize| -> Result<(Vec<f64>, CommStats)> {
            let mut comm = CommStats::default();
            let index = cand_index(fg);
            let scores = if fg.use_cp {
                let vp = ValidityPerturbation::new(e2, fg.candidates.len() as u32)?;
                let inputs = cp_inputs(fg, &index);
                let agg = vp_aggregate_batch(&vp, &inputs, seed, threads, &mut comm)?;
                cp_scores(fg, &vp, &agg)
            } else {
                let inputs = item_inputs(fg, &index);
                score_round_batch(
                    e2,
                    fg.candidates.len(),
                    &inputs,
                    validity,
                    seed,
                    threads,
                    &mut comm,
                )?
            };
            Ok((scores, comm))
        };

    // Final cohorts rarely fill a single 4096-item shard, so per-class
    // sharding runs them one after another on one worker. Pre-drawing each
    // eligible class's base seed in class order (exactly the draws an
    // in-class-order execution performs) lets the classes themselves fan
    // out across workers while every RNG stream — and therefore the mined
    // set — stays bit-identical.
    let threads = pace.threads;
    let jobs: Vec<(usize, u64)> = finals
        .iter()
        .enumerate()
        .filter(|(_, fg)| !fg.users.is_empty() && !fg.candidates.is_empty())
        .map(|(i, _)| (i, pace.next_seed()))
        .collect();
    // Split the worker budget between the class fan-out and each class's
    // internal sharding: paper-scale cohorts exceed one shard, and
    // `jobs.len() × threads` workers would oversubscribe the machine in
    // exactly the path this fan-out accelerates.
    let inner_threads = (threads / jobs.len().max(1)).max(1);
    let outcomes = parallel::map_each(&jobs, threads, |_, &(i, seed)| {
        class_scores_batch(&finals[i], seed, inner_threads).map(|r| (i, r))
    });
    for outcome in outcomes {
        let (i, (scores, class_comm)) = outcome?;
        comm.merge(class_comm);
        let fg = &finals[i];
        per_class[fg.class as usize] = rank_top(&fg.candidates, scores);
    }

    Ok(TopKResult {
        per_class,
        comm,
        broadcast_bits_per_user: phase1_broadcast + class_broadcast,
    })
}

// ------------------------------------------------------------ helpers --

/// Aggregates one round of bucket/candidate reports and returns raw scores.
/// `inputs` holds each user's bucket (`None` = invalid). With `validity`
/// the VP mechanism is used; otherwise invalid users substitute a uniform
/// random bucket (vanilla PEM deniability) under the adaptive oracle.
/// Bulk work is sharded across `pace`'s threads with derived deterministic
/// streams.
fn score_round<E: Executor>(
    pace: &mut Pace<'_, E>,
    eps: Eps,
    buckets: usize,
    inputs: &[Option<u32>],
    validity: bool,
    comm: &mut CommStats,
) -> Result<Vec<f64>> {
    if buckets == 0 {
        return Ok(Vec::new());
    }
    if validity {
        let vp = ValidityPerturbation::new(eps, buckets as u32)?;
        let vp_inputs: Vec<ValidityInput> = inputs
            .iter()
            .map(|b| match b {
                Some(idx) => ValidityInput::Valid(*idx),
                None => ValidityInput::Invalid,
            })
            .collect();
        let agg = pace.vp_aggregate(&vp, &vp_inputs, comm)?;
        Ok(agg.raw_counts().iter().map(|&c| c as f64).collect())
    } else {
        let base = pace.next_seed();
        oracle_score_batch(eps, buckets, inputs, base, pace.threads, comm)
    }
}

/// The sharded half of [`score_round`]'s oracle path, callable with an
/// explicit base seed so the per-class final rounds can pre-draw their
/// seeds and run on worker threads.
fn oracle_score_batch(
    eps: Eps,
    buckets: usize,
    inputs: &[Option<u32>],
    base_seed: u64,
    threads: usize,
    comm: &mut CommStats,
) -> Result<Vec<f64>> {
    let oracle = Oracle::adaptive(eps, buckets as u32)?;
    let mut agg = Aggregator::new(&oracle);
    let shards = parallel::map_shards(inputs, threads, |shard, chunk| {
        let mut rng = parallel::shard_rng(base_seed, shard);
        let mut shard_comm = CommStats::default();
        let mut reports = Vec::with_capacity(chunk.len());
        for &b in chunk {
            let value = b.unwrap_or_else(|| rng.random_range(0..buckets as u32));
            let report = oracle.privatize(value, &mut rng)?;
            shard_comm.record(report.size_bits());
            reports.push(report);
        }
        let mut local = Aggregator::new(&oracle);
        local.absorb_all(&reports)?;
        Ok::<_, Error>((local, shard_comm))
    });
    for shard in shards {
        let (partial, partial_comm) = shard?;
        agg.merge(&partial)?;
        comm.merge(partial_comm);
    }
    Ok(agg.estimate())
}

/// The sharded half of [`Pace::vp_aggregate`], callable with an explicit
/// base seed (same rationale as [`oracle_score_batch`]).
fn vp_aggregate_batch(
    vp: &ValidityPerturbation,
    inputs: &[ValidityInput],
    base_seed: u64,
    threads: usize,
    comm: &mut CommStats,
) -> Result<VpAggregator> {
    let mut agg = VpAggregator::new(vp);
    let shards = parallel::map_shards(inputs, threads, |shard, chunk| {
        let mut rng = parallel::shard_rng(base_seed, shard);
        let mut shard_comm = CommStats::default();
        let mut reports = Vec::with_capacity(chunk.len());
        for &input in chunk {
            let report = vp.privatize(input, &mut rng)?;
            shard_comm.record(report.len());
            reports.push(report);
        }
        let mut local = VpAggregator::new(vp);
        local.absorb_all(&reports)?;
        Ok::<_, Error>((local, shard_comm))
    });
    for shard in shards {
        let (partial, partial_comm) = shard?;
        agg.merge(&partial)?;
        comm.merge(partial_comm);
    }
    Ok(agg)
}

/// [`score_round`]'s sharded path with an explicit base seed — the
/// per-class final rounds pre-draw one seed per class in class order and
/// then run the classes themselves on worker threads.
fn score_round_batch(
    eps: Eps,
    buckets: usize,
    inputs: &[Option<u32>],
    validity: bool,
    base_seed: u64,
    threads: usize,
    comm: &mut CommStats,
) -> Result<Vec<f64>> {
    if buckets == 0 {
        return Ok(Vec::new());
    }
    if validity {
        let vp = ValidityPerturbation::new(eps, buckets as u32)?;
        let vp_inputs: Vec<ValidityInput> = inputs
            .iter()
            .map(|b| match b {
                Some(idx) => ValidityInput::Valid(*idx),
                None => ValidityInput::Invalid,
            })
            .collect();
        let agg = vp_aggregate_batch(&vp, &vp_inputs, base_seed, threads, comm)?;
        Ok(agg.raw_counts().iter().map(|&c| c as f64).collect())
    } else {
        oracle_score_batch(eps, buckets, inputs, base_seed, threads, comm)
    }
}

/// Splits a ranked list of joint codes into per-class top-k item lists.
fn split_joint_ranking(ordered: &[u32], domains: Domains, k: usize) -> Vec<Vec<u32>> {
    let mut per_class: Vec<Vec<u32>> = vec![Vec::new(); domains.classes() as usize];
    for &joint in ordered {
        let pair = domains.pair_of_joint(joint);
        let list = &mut per_class[pair.label as usize];
        if list.len() < k {
            list.push(pair.item);
        }
    }
    per_class
}

/// First `⌈frac·N⌉` users vs the rest.
fn split_at_frac(data: &[LabelItem], frac: f64) -> (&[LabelItem], &[LabelItem]) {
    let cut = ((data.len() as f64 * frac).ceil() as usize).min(data.len());
    data.split_at(cut)
}

/// Per-user downlink estimate for PEM: a user participating in one round
/// must receive that round's candidate prefixes (up to `2k·2^m` codes of
/// `⌈log₂ d⌉` bits).
fn pem_broadcast_estimate(domain: u32, k: usize) -> f64 {
    let code_bits = crate::encoding::PrefixCode::for_domain(domain).bits() as f64;
    (4 * k) as f64 * code_bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    /// A 3-class dataset with disjoint per-class heavy hitters: class c's
    /// top items are {c·10, c·10+1, …} with geometric weights.
    fn skewed_dataset(n: usize, d: u32) -> (Domains, Vec<LabelItem>) {
        let domains = Domains::new(3, d).unwrap();
        let mut data = Vec::with_capacity(n);
        for u in 0..n {
            let label = (u % 3) as u32;
            // Heavy head: item rank within class by geometric-ish weights.
            let rank = match u % 16 {
                0..=7 => 0,
                8..=11 => 1,
                12..=13 => 2,
                14 => 3,
                _ => 4 + (u / 16 % ((d as usize).min(20) - 4)) as u32 as usize,
            } as u32;
            data.push(LabelItem::new(label, (label * 37 + rank) % d));
        }
        // Interleave deterministically.
        let mut rng = StdRng::seed_from_u64(99);
        for i in (1..data.len()).rev() {
            let j = rng.random_range(0..=i);
            data.swap(i, j);
        }
        (domains, data)
    }

    #[test]
    fn method_names_match_paper() {
        assert_eq!(TopKMethod::Hec.name(), "HEC");
        assert_eq!(TopKMethod::PtjPem { validity: false }.name(), "PTJ");
        assert_eq!(
            TopKMethod::PtjShuffled { validity: true }.name(),
            "PTJ-Shuffling+VP"
        );
        assert_eq!(
            TopKMethod::PtsPem {
                validity: false,
                global: false
            }
            .name(),
            "PTS"
        );
        assert_eq!(
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true
            }
            .name(),
            "PTS-Shuffling+VP+CP"
        );
    }

    #[test]
    fn all_methods_return_k_items_per_class_at_high_eps() {
        let (domains, data) = skewed_dataset(120_000, 64);
        let config = TopKConfig::new(3, eps(8.0));
        for (i, method) in TopKMethod::fig7_set().into_iter().enumerate() {
            let plan = Exec::sequential().seed(7 + i as u64);
            let result = execute(method, config, domains, &plan, SliceSource::new(&data)).unwrap();
            assert_eq!(result.per_class.len(), 3, "{}", method.name());
            for (c, items) in result.per_class.iter().enumerate() {
                assert!(
                    items.len() <= 3,
                    "{} class {c}: {} items",
                    method.name(),
                    items.len()
                );
                for &i in items {
                    assert!(i < 64, "{} produced out-of-domain item {i}", method.name());
                }
            }
            assert!(result.comm.users > 0);
        }
    }

    #[test]
    fn optimized_pts_finds_true_tops_at_high_eps() {
        let (domains, data) = skewed_dataset(150_000, 64);
        let truth: Vec<Vec<u32>> = {
            let t = mcim_core::FrequencyTable::ground_truth(domains, &data).unwrap();
            (0..3).map(|c| t.top_k(c, 3)).collect()
        };
        let config = TopKConfig::new(3, eps(8.0));
        let result = execute(
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true,
            },
            config,
            domains,
            &Exec::sequential().seed(11),
            SliceSource::new(&data),
        )
        .unwrap();
        // At ε=8 with 50k users per class the top-1 must be found in every
        // class; allow slack on the tail.
        for (c, (mined, tru)) in result.per_class.iter().zip(&truth).enumerate() {
            assert!(
                mined.contains(&tru[0]),
                "class {c}: top-1 {} missing from {mined:?}",
                tru[0]
            );
        }
    }

    #[test]
    fn ptj_shuffled_finds_true_tops_at_high_eps() {
        let (domains, data) = skewed_dataset(150_000, 64);
        let truth: Vec<Vec<u32>> = {
            let t = mcim_core::FrequencyTable::ground_truth(domains, &data).unwrap();
            (0..3).map(|c| t.top_k(c, 3)).collect()
        };
        let config = TopKConfig::new(3, eps(8.0));
        let result = execute(
            TopKMethod::PtjShuffled { validity: true },
            config,
            domains,
            &Exec::sequential().seed(13),
            SliceSource::new(&data),
        )
        .unwrap();
        for (c, (mined, tru)) in result.per_class.iter().zip(&truth).enumerate() {
            assert!(
                mined.contains(&tru[0]),
                "class {c}: {mined:?} missing {}",
                tru[0]
            );
        }
    }

    #[test]
    fn batch_execute_is_thread_count_invariant_for_every_method() {
        let (domains, data) = skewed_dataset(30_000, 64);
        let config = TopKConfig::new(3, eps(6.0));
        for method in TopKMethod::fig7_set() {
            let batch = |threads: usize| {
                execute(
                    method,
                    config,
                    domains,
                    &Exec::batch().seed(13).threads(threads),
                    SliceSource::new(&data),
                )
            };
            let seq = batch(1).unwrap();
            for threads in [2, 8] {
                let par = batch(threads).unwrap();
                assert_eq!(
                    par.per_class,
                    seq.per_class,
                    "{} diverged at threads={threads}",
                    method.name()
                );
                assert_eq!(par.comm, seq.comm, "{}", method.name());
                assert!(
                    (par.broadcast_bits_per_user - seq.broadcast_bits_per_user).abs() == 0.0,
                    "{}",
                    method.name()
                );
            }
        }
    }

    #[test]
    fn batch_execute_finds_true_tops_at_high_eps() {
        let (domains, data) = skewed_dataset(150_000, 64);
        let truth: Vec<Vec<u32>> = {
            let t = mcim_core::FrequencyTable::ground_truth(domains, &data).unwrap();
            (0..3).map(|c| t.top_k(c, 3)).collect()
        };
        let config = TopKConfig::new(3, eps(8.0));
        let result = execute(
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true,
            },
            config,
            domains,
            &Exec::batch().seed(23).threads(2),
            SliceSource::new(&data),
        )
        .unwrap();
        for (c, (mined, tru)) in result.per_class.iter().zip(&truth).enumerate() {
            assert!(
                mined.contains(&tru[0]),
                "class {c}: top-1 {} missing from {mined:?}",
                tru[0]
            );
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let domains = Domains::new(2, 16).unwrap();
        let plan = Exec::sequential().seed(0);
        let data = vec![LabelItem::new(0, 0)];
        assert!(execute(
            TopKMethod::Hec,
            TopKConfig::new(0, eps(1.0)),
            domains,
            &plan,
            SliceSource::new(&data),
        )
        .is_err());
        assert!(execute(
            TopKMethod::Hec,
            TopKConfig::new(1, eps(1.0)),
            domains,
            &plan,
            SliceSource::new(&[] as &[LabelItem]),
        )
        .is_err());
    }

    #[test]
    fn tiny_class_gets_empty_or_short_results_not_panic() {
        // One class has almost no users — the Fig. 8 regime.
        let domains = Domains::new(3, 64).unwrap();
        let mut data = Vec::new();
        for u in 0..30_000usize {
            let label = if u % 1000 == 0 { 2 } else { (u % 2) as u32 };
            data.push(LabelItem::new(label, (u % 10) as u32));
        }
        let config = TopKConfig::new(5, eps(4.0));
        for (i, method) in TopKMethod::fig7_set().into_iter().enumerate() {
            let plan = Exec::sequential().seed(21 + i as u64);
            let result = execute(method, config, domains, &plan, SliceSource::new(&data)).unwrap();
            assert_eq!(result.per_class.len(), 3, "{}", method.name());
        }
    }

    #[test]
    fn split_joint_ranking_caps_each_class_at_k() {
        let domains = Domains::new(2, 8).unwrap();
        // joint codes: class = joint / 8.
        let ordered = vec![0u32, 1, 8, 2, 9, 3, 10, 11];
        let split = split_joint_ranking(&ordered, domains, 2);
        assert_eq!(split[0], vec![0, 1]);
        assert_eq!(split[1], vec![0, 1]);
    }

    #[test]
    fn pts_family_uses_less_uplink_than_ptj_family() {
        // Table II's communication ordering at equal ε.
        let (domains, data) = skewed_dataset(6_000, 256);
        let config = TopKConfig::new(4, eps(4.0));
        let pts = execute(
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true,
            },
            config,
            domains,
            &Exec::sequential().seed(31),
            SliceSource::new(&data),
        )
        .unwrap();
        let ptj = execute(
            TopKMethod::PtjShuffled { validity: true },
            config,
            domains,
            &Exec::sequential().seed(32),
            SliceSource::new(&data),
        )
        .unwrap();
        assert!(
            pts.comm.bits_per_user() < ptj.comm.bits_per_user(),
            "pts {} vs ptj {}",
            pts.comm.bits_per_user(),
            ptj.comm.bits_per_user()
        );
    }
}
