//! PEM — the Prefix Extending Method baseline (Wang et al., TDSC 2021),
//! the state-of-the-art trie-based heavy-hitter miner the paper builds on
//! and compares against (§VI-B).
//!
//! Items are `ℓ`-bit codes; mining proceeds over rounds. Round `r` estimates
//! the frequencies of the current candidate prefixes using a fresh group of
//! users and the adaptive frequency oracle, keeps the heaviest `2k`, and
//! extends them by `m` bits. The last round works on full-length codes and
//! keeps `k`.
//!
//! Two paper-relevant details are configurable:
//!
//! * **invalid handling** — a user whose prefix was pruned (or whose item
//!   is invalid for the class being mined) substitutes a uniformly random
//!   candidate in vanilla PEM; with `validity = true` the engine instead
//!   uses the paper's validity perturbation (§IV-A).
//! * the engine can start from an externally supplied candidate set (the
//!   "globally frequent candidates" optimization of Algorithm 1).

use rand::rngs::StdRng;
use rand::Rng;

use mcim_core::{CommStats, ValidityInput, ValidityPerturbation, VpAggregator};
use mcim_oracles::exec::{Exec, Executor, Stage, StageDecode};
use mcim_oracles::hash::SplitMix64;
use mcim_oracles::stream::{drain_source, required_len, ReportSource, SliceSource, Take};
use mcim_oracles::wire::{StageSpec, Wire, WireReader};
use mcim_oracles::{Aggregator, Eps, Error, Oracle, Result};

use crate::encoding::PrefixCode;

/// Candidate-prefix → candidate-index lookup backed by a sorted vec with
/// binary search. This file is wire-sensitive (it carries `StageDecode`
/// impls), so even lookup-only tables stay off `HashMap` — hashed
/// containers are banned here outright (`mcim-lint`'s hashmap-in-wire
/// rule) rather than audited use-by-use for iteration-order leaks.
#[derive(Debug, Clone)]
struct CandIndex {
    /// `(prefix, candidate index)` pairs, sorted by prefix.
    by_prefix: Vec<(u32, u32)>,
}

impl CandIndex {
    fn new(candidates: &[u32]) -> Self {
        let mut by_prefix: Vec<(u32, u32)> = candidates
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect();
        by_prefix.sort_unstable();
        CandIndex { by_prefix }
    }

    fn get(&self, prefix: u32) -> Option<u32> {
        self.by_prefix
            .binary_search_by_key(&prefix, |&(p, _)| p)
            .ok()
            .map(|i| self.by_prefix[i].1)
    }
}

/// One PEM round's bulk privatize+aggregate step over the
/// validity-perturbation mechanism, as a serializable [`Stage`]: a worker
/// process rebuilds the candidate index and VP mechanism from
/// `(ε, domain, prefix length, candidates)` and replays the identical
/// fold. Items are each user's raw item (`None` = invalid user).
pub struct PemVpRoundStage {
    eps: Eps,
    domain: u32,
    prefix_len: u32,
    candidates: Vec<u32>,
    code: PrefixCode,
    index: CandIndex,
    vp: ValidityPerturbation,
}

impl PemVpRoundStage {
    /// Builds the stage, constructing the VP mechanism for the candidate
    /// count (deterministic — a rebuilt mechanism is interchangeable with
    /// a cached one).
    pub fn new(eps: Eps, domain: u32, prefix_len: u32, candidates: Vec<u32>) -> Result<Self> {
        let vp = ValidityPerturbation::new(eps, candidates.len() as u32)?;
        Ok(Self::with_mech(eps, domain, prefix_len, candidates, vp))
    }

    fn with_mech(
        eps: Eps,
        domain: u32,
        prefix_len: u32,
        candidates: Vec<u32>,
        vp: ValidityPerturbation,
    ) -> Self {
        let index = CandIndex::new(&candidates);
        PemVpRoundStage {
            eps,
            domain,
            prefix_len,
            candidates,
            code: PrefixCode::for_domain(domain),
            index,
            vp,
        }
    }

    fn classify(&self, item: Option<u32>) -> ValidityInput {
        match item {
            Some(it) => match self.index.get(self.code.prefix(it, self.prefix_len)) {
                Some(idx) => ValidityInput::Valid(idx),
                None => ValidityInput::Invalid,
            },
            None => ValidityInput::Invalid,
        }
    }
}

impl Stage for PemVpRoundStage {
    type Item = Option<u32>;
    type Acc = (VpAggregator, CommStats);

    fn template(&self) -> Self::Acc {
        (VpAggregator::new(&self.vp), CommStats::default())
    }

    fn fold(
        &self,
        rng: &mut StdRng,
        _abs: u64,
        items: &[Option<u32>],
        (agg, comm): &mut Self::Acc,
    ) -> Result<()> {
        for &item in items {
            let report = self.vp.privatize(self.classify(item), rng)?;
            comm.record(report.len());
            agg.absorb(&report)?;
        }
        Ok(())
    }

    fn merge(&self, into: &mut Self::Acc, from: &Self::Acc) -> Result<()> {
        into.0.merge(&from.0)?;
        into.1.merge(from.1);
        Ok(())
    }

    fn spec(&self) -> Option<StageSpec> {
        Some(StageSpec::new(Self::KIND, |buf| {
            self.eps.value().put(buf);
            self.domain.put(buf);
            self.prefix_len.put(buf);
            self.candidates.put(buf);
        }))
    }
}

impl StageDecode for PemVpRoundStage {
    const KIND: &'static str = "pem/vp-round";

    fn decode(payload: &mut WireReader<'_>) -> Result<Self> {
        let eps = Eps::new(f64::take(payload)?)?;
        let domain = u32::take(payload)?;
        let prefix_len = u32::take(payload)?;
        let candidates = Vec::<u32>::take(payload)?;
        if domain == 0 || candidates.is_empty() {
            return Err(Error::InvalidParameter {
                name: "candidates",
                constraint: "non-empty candidate set over a non-empty domain",
            });
        }
        PemVpRoundStage::new(eps, domain, prefix_len, candidates)
    }
}

/// One vanilla PEM round's step over the adaptive frequency oracle, as a
/// serializable [`Stage`]. Pruned/invalid users substitute a uniformly
/// random candidate drawn from the same per-shard RNG stream, so workers
/// replay the substitution exactly.
pub struct PemOracleRoundStage {
    eps: Eps,
    domain: u32,
    prefix_len: u32,
    candidates: Vec<u32>,
    code: PrefixCode,
    index: CandIndex,
    oracle: Oracle,
}

impl PemOracleRoundStage {
    /// Builds the stage, constructing the adaptive oracle for the
    /// candidate count.
    pub fn new(eps: Eps, domain: u32, prefix_len: u32, candidates: Vec<u32>) -> Result<Self> {
        let oracle = Oracle::adaptive(eps, candidates.len() as u32)?;
        Ok(Self::with_mech(eps, domain, prefix_len, candidates, oracle))
    }

    fn with_mech(
        eps: Eps,
        domain: u32,
        prefix_len: u32,
        candidates: Vec<u32>,
        oracle: Oracle,
    ) -> Self {
        let index = CandIndex::new(&candidates);
        PemOracleRoundStage {
            eps,
            domain,
            prefix_len,
            candidates,
            code: PrefixCode::for_domain(domain),
            index,
            oracle,
        }
    }
}

impl Stage for PemOracleRoundStage {
    type Item = Option<u32>;
    type Acc = (Aggregator, CommStats);

    fn template(&self) -> Self::Acc {
        (Aggregator::new(&self.oracle), CommStats::default())
    }

    fn fold(
        &self,
        rng: &mut StdRng,
        _abs: u64,
        items: &[Option<u32>],
        (agg, comm): &mut Self::Acc,
    ) -> Result<()> {
        let n_cands = self.candidates.len() as u32;
        for &item in items {
            let value = match item {
                Some(it) => match self.index.get(self.code.prefix(it, self.prefix_len)) {
                    Some(idx) => idx,
                    None => rng.random_range(0..n_cands),
                },
                None => rng.random_range(0..n_cands),
            };
            let report = self.oracle.privatize(value, rng)?;
            comm.record(report.size_bits());
            agg.absorb(&report)?;
        }
        Ok(())
    }

    fn merge(&self, into: &mut Self::Acc, from: &Self::Acc) -> Result<()> {
        into.0.merge(&from.0)?;
        into.1.merge(from.1);
        Ok(())
    }

    fn spec(&self) -> Option<StageSpec> {
        Some(StageSpec::new(Self::KIND, |buf| {
            self.eps.value().put(buf);
            self.domain.put(buf);
            self.prefix_len.put(buf);
            self.candidates.put(buf);
        }))
    }
}

impl StageDecode for PemOracleRoundStage {
    const KIND: &'static str = "pem/oracle-round";

    fn decode(payload: &mut WireReader<'_>) -> Result<Self> {
        let eps = Eps::new(f64::take(payload)?)?;
        let domain = u32::take(payload)?;
        let prefix_len = u32::take(payload)?;
        let candidates = Vec::<u32>::take(payload)?;
        if domain == 0 || candidates.is_empty() {
            return Err(Error::InvalidParameter {
                name: "candidates",
                constraint: "non-empty candidate set over a non-empty domain",
            });
        }
        PemOracleRoundStage::new(eps, domain, prefix_len, candidates)
    }
}

/// Round-to-round cache of derived mechanisms, keyed by
/// `(ε bit pattern, candidate count)`.
///
/// Every PEM round used to rebuild a fresh [`ValidityPerturbation`] (or
/// adaptive [`Oracle`]) even though middle rounds repeat the same candidate
/// count (`keep_factor·k·2^m`), so deep tries paid the calibration constant
/// (`exp`, probability derivation, allocation) once per round. The cache
/// makes the rebuild a hit whenever `(ε, |candidates|)` repeats; mechanism
/// construction draws no randomness, so caching cannot change any stream.
#[derive(Debug, Clone, Default)]
struct MechCache {
    vp: Option<(u64, u32, ValidityPerturbation)>,
    oracle: Option<(u64, u32, Oracle)>,
}

impl MechCache {
    /// The validity-perturbation mechanism for `(eps, n_cands)`.
    fn vp(&mut self, eps: Eps, n_cands: u32) -> Result<ValidityPerturbation> {
        let key = (eps.value().to_bits(), n_cands);
        if let Some((k0, k1, vp)) = &self.vp {
            if (*k0, *k1) == key {
                return Ok(vp.clone());
            }
        }
        let vp = ValidityPerturbation::new(eps, n_cands)?;
        self.vp = Some((key.0, key.1, vp.clone()));
        Ok(vp)
    }

    /// The adaptive oracle for `(eps, n_cands)`.
    fn oracle(&mut self, eps: Eps, n_cands: u32) -> Result<Oracle> {
        let key = (eps.value().to_bits(), n_cands);
        if let Some((k0, k1, oracle)) = &self.oracle {
            if (*k0, *k1) == key {
                return Ok(oracle.clone());
            }
        }
        let oracle = Oracle::adaptive(eps, n_cands)?;
        self.oracle = Some((key.0, key.1, oracle.clone()));
        Ok(oracle)
    }
}

/// PEM tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct PemConfig {
    /// Number of items to mine.
    pub k: usize,
    /// Bits added to surviving prefixes per round (`m`, default 1).
    pub extend_bits: u32,
    /// Candidates kept per intermediate round, as a multiple of `k`
    /// (default 2 — the paper's "top 2·k buckets").
    pub keep_factor: usize,
    /// Use validity perturbation instead of random-candidate substitution.
    pub validity: bool,
}

impl PemConfig {
    /// Vanilla PEM with the paper's defaults.
    pub fn new(k: usize) -> Self {
        PemConfig {
            k,
            extend_bits: 1,
            keep_factor: 2,
            validity: false,
        }
    }

    /// Enables validity perturbation for invalid users.
    pub fn with_validity(mut self) -> Self {
        self.validity = true;
        self
    }
}

/// The incremental PEM state machine. Feed each round a fresh user group.
#[derive(Debug, Clone)]
pub struct PemEngine {
    code: PrefixCode,
    config: PemConfig,
    /// Current candidate prefixes (sorted, deduplicated).
    candidates: Vec<u32>,
    prefix_len: u32,
    /// Scores of `candidates` from the most recent round.
    last_scores: Vec<f64>,
    finished: bool,
    /// Mechanism reuse across rounds (see [`MechCache`]).
    cache: MechCache,
}

impl PemEngine {
    /// Creates an engine over item domain `[0, d)` starting from all
    /// prefixes of length `γ₀ = min(⌈log₂ 4k⌉, ℓ)`.
    pub fn new(d: u32, config: PemConfig) -> Result<Self> {
        if config.k == 0 {
            return Err(Error::InvalidParameter {
                name: "k",
                constraint: "k >= 1",
            });
        }
        if d == 0 {
            return Err(Error::EmptyDomain);
        }
        let code = PrefixCode::for_domain(d);
        let gamma0 = PrefixCode::for_domain((4 * config.k as u64).min(u32::MAX as u64) as u32)
            .bits()
            .min(code.bits());
        let candidates = code.live_prefixes(gamma0);
        Ok(PemEngine {
            code,
            config,
            candidates,
            prefix_len: gamma0,
            last_scores: Vec::new(),
            finished: false,
            cache: MechCache::default(),
        })
    }

    /// Creates an engine that *resumes* from externally mined candidates of
    /// length `prefix_len` (Algorithm 1's global candidates).
    pub fn resume(
        d: u32,
        config: PemConfig,
        candidates: Vec<u32>,
        prefix_len: u32,
    ) -> Result<Self> {
        let code = PrefixCode::for_domain(d);
        if prefix_len > code.bits() || candidates.is_empty() {
            return Err(Error::InvalidParameter {
                name: "candidates",
                constraint: "non-empty candidate set with prefix_len <= code length",
            });
        }
        Ok(PemEngine {
            code,
            config,
            candidates,
            prefix_len,
            last_scores: Vec::new(),
            finished: false,
            cache: MechCache::default(),
        })
    }

    /// Remaining rounds, counting the final full-length round.
    pub fn remaining_rounds(&self) -> usize {
        if self.finished {
            return 0;
        }
        let gap = self.code.bits() - self.prefix_len;
        1 + gap.div_ceil(self.config.extend_bits) as usize
    }

    /// Whether the next round is the final (full-length) one.
    pub fn is_final_round(&self) -> bool {
        !self.finished && self.prefix_len == self.code.bits()
    }

    /// Current candidate prefixes.
    pub fn candidates(&self) -> &[u32] {
        &self.candidates
    }

    /// Current prefix length.
    pub fn prefix_len(&self) -> u32 {
        self.prefix_len
    }

    /// Runs one round under an [`Exec`] plan — the single entry point for
    /// every execution mode. `source` yields each participating user's
    /// item (`None` = the user is invalid for this mining task, e.g. her
    /// label does not match the class being mined). Returns uplink
    /// statistics.
    ///
    /// Under RNG-contract v2 every mode folds the round's serializable
    /// stage through the plan's in-process executor
    /// ([`PemEngine::execute_round_on`]), so seed-equal plans are
    /// bit-identical across modes, thread counts and chunk sizes.
    ///
    /// The plan seed is **this round's** seed: a multi-round driver must
    /// pass a distinct seed per round — reusing one plan verbatim replays
    /// the same noise stream every round and correlates the rounds.
    /// [`Pem::execute`] does this for you by deriving one [`SplitMix64`]
    /// seed per round from its plan seed.
    pub fn execute_round<S>(&mut self, eps: Eps, plan: &Exec, source: S) -> Result<CommStats>
    where
        S: ReportSource<Item = Option<u32>>,
    {
        self.execute_round_on(&plan.in_process(), eps, plan.base_seed(), source)
    }

    /// Runs one sharded round on an explicit [`Executor`] backend — the
    /// distributed-reducer seam of the PEM layer (pass `mcim-dist`'s
    /// `Coordinator` to fan the round's users out across worker
    /// processes).
    ///
    /// The round's fold is a serializable stage ([`PemVpRoundStage`] /
    /// [`PemOracleRoundStage`]), so any backend processes the user group
    /// in fixed absolute shards with the deterministic per-shard RNG
    /// stream `shard_rng(stage_seed, shard)` (state carried across chunk
    /// boundaries) through the word-parallel column-sum aggregators. The
    /// surviving candidate set is a pure function of
    /// `(engine state, eps, items, stage_seed)` — bit-identical for every
    /// conforming executor, thread count, chunk size and worker count.
    /// `stage_seed` is explicit (rather than taken from the executor's
    /// plan) because multi-round miners derive one seed per round from the
    /// plan seed.
    pub fn execute_round_on<E, S>(
        &mut self,
        executor: &E,
        eps: Eps,
        stage_seed: u64,
        mut source: S,
    ) -> Result<CommStats>
    where
        E: Executor,
        S: ReportSource<Item = Option<u32>>,
    {
        let source = &mut source;
        if self.finished {
            return Err(Error::InvalidParameter {
                name: "round",
                constraint: "engine already finished",
            });
        }
        mcim_obs::counter_add("mcim_pem_rounds_total", 1);
        let n_cands = self.candidates.len() as u32;

        let (scores, comm) = if self.config.validity {
            let stage = PemVpRoundStage::with_mech(
                eps,
                self.code.domain(),
                self.prefix_len,
                self.candidates.clone(),
                self.cache.vp(eps, n_cands)?,
            );
            let (agg, comm) = executor.fold(source, stage_seed, &stage)?;
            (agg.raw_counts().iter().map(|&c| c as f64).collect(), comm)
        } else {
            let stage = PemOracleRoundStage::with_mech(
                eps,
                self.code.domain(),
                self.prefix_len,
                self.candidates.clone(),
                self.cache.oracle(eps, n_cands)?,
            );
            let (agg, comm) = executor.fold(source, stage_seed, &stage)?;
            (agg.estimate(), comm)
        };

        self.prune_and_extend(scores);
        Ok(comm)
    }

    /// Applies external scores (one per candidate) — used by callers that
    /// aggregate reports themselves (the multi-class PTS pipeline).
    pub fn apply_scores(&mut self, scores: Vec<f64>) -> Result<()> {
        if scores.len() != self.candidates.len() {
            return Err(Error::ReportMismatch {
                expected: "one score per candidate",
            });
        }
        if self.finished {
            return Err(Error::InvalidParameter {
                name: "round",
                constraint: "engine already finished",
            });
        }
        self.prune_and_extend(scores);
        Ok(())
    }

    fn prune_and_extend(&mut self, scores: Vec<f64>) {
        let is_final = self.prefix_len == self.code.bits();
        let keep = if is_final {
            self.config.k
        } else {
            self.config.keep_factor * self.config.k
        };
        let mut order: Vec<usize> = (0..self.candidates.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order.truncate(keep);

        if is_final {
            // Record the surviving items (full codes) with their scores.
            self.last_scores = order.iter().map(|&i| scores[i]).collect();
            self.candidates = order.iter().map(|&i| self.candidates[i]).collect();
            self.finished = true;
            return;
        }

        let survivors: Vec<u32> = order.iter().map(|&i| self.candidates[i]).collect();
        let extend = self
            .config
            .extend_bits
            .min(self.code.bits() - self.prefix_len);
        let new_len = self.prefix_len + extend;
        let mut next: Vec<u32> = Vec::with_capacity(survivors.len() << extend);
        // Only keep children that still have a real item beneath them.
        let max_prefix = self.code.prefix(self.code.domain() - 1, new_len);
        for &s in &survivors {
            for child in self.code.children(s, extend) {
                if child <= max_prefix {
                    next.push(child);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        self.candidates = next;
        self.prefix_len = new_len;
        self.last_scores.clear();
    }

    /// The mined top items (descending score). Only valid after the final
    /// round; items are full codes and always real domain values.
    pub fn top_items(&self) -> Result<Vec<u32>> {
        if !self.finished {
            return Err(Error::InvalidParameter {
                name: "round",
                constraint: "final round not yet run",
            });
        }
        Ok(self
            .candidates
            .iter()
            .copied()
            .filter(|&c| self.code.is_real_item(c))
            .collect())
    }

    /// Scores aligned with [`PemEngine::top_items`]' pre-filter candidate
    /// list (descending).
    pub fn final_scores(&self) -> &[f64] {
        &self.last_scores
    }
}

/// Convenience single-population miner: splits `items` evenly across the
/// required rounds and returns the mined top-k.
#[derive(Debug, Clone)]
pub struct Pem {
    d: u32,
    config: PemConfig,
}

/// Outcome of a [`Pem::mine`] run.
#[derive(Debug, Clone)]
pub struct PemOutcome {
    /// Mined items, descending estimated frequency.
    pub top: Vec<u32>,
    /// Uplink communication statistics.
    pub comm: CommStats,
}

impl Pem {
    /// Creates a miner over domain `[0, d)`.
    pub fn new(d: u32, config: PemConfig) -> Result<Self> {
        PemEngine::new(d, config)?; // validate early
        Ok(Pem { d, config })
    }

    /// Mines the top-k under an [`Exec`] plan — the single entry point for
    /// every execution mode. `None` items are invalid users.
    ///
    /// Every mode splits the source into one `⌈n/rounds⌉`-user group per
    /// round (pulled straight off the source via [`Take`] — stream mode
    /// never materializes a round group beyond one chunk) and runs round
    /// `r` through [`PemEngine::execute_round_on`] with the `r`-th seed of
    /// the [`SplitMix64`] stream over the plan seed; under RNG-contract v2
    /// the modes are bit-identical to each other for every thread count
    /// and chunk size. The round split needs the population size up
    /// front, so sharded modes require a **sized** source; sequential
    /// plans keep their historical unsized-source support by draining the
    /// source first (they materialize anyway).
    pub fn execute<S>(&self, eps: Eps, plan: &Exec, mut source: S) -> Result<PemOutcome>
    where
        S: ReportSource<Item = Option<u32>>,
    {
        if plan.is_sequential() && source.size_hint().is_none() {
            let items = drain_source(&mut source)?;
            return self.execute_on(
                &plan.in_process(),
                eps,
                plan.base_seed(),
                SliceSource::new(&items),
            );
        }
        self.execute_on(&plan.in_process(), eps, plan.base_seed(), source)
    }

    /// Mines the top-k on an explicit [`Executor`] backend — the
    /// distributed-reducer seam of the whole-miner layer. Requires a
    /// **sized** source (rounds split the population up front).
    ///
    /// Round `r` runs through [`PemEngine::execute_round_on`] with the
    /// `r`-th seed of the [`SplitMix64`] stream over `base_seed`, exactly
    /// like [`Pem::execute`] with a sharded plan seeded `base_seed` —
    /// bit-identical for every conforming executor. `base_seed` is
    /// explicit because multi-stage callers (the multi-class top-k
    /// methods) derive one seed per mining stage.
    pub fn execute_on<E, S>(
        &self,
        executor: &E,
        eps: Eps,
        base_seed: u64,
        mut source: S,
    ) -> Result<PemOutcome>
    where
        E: Executor,
        S: ReportSource<Item = Option<u32>>,
    {
        let n = required_len(&source)?;
        let mut engine = PemEngine::new(self.d, self.config)?;
        let rounds = engine.remaining_rounds();
        let mut comm = CommStats::default();
        let chunk = (n.div_ceil(rounds as u64)).max(1);
        let mut stream = SplitMix64::new(base_seed);
        for _ in 0..rounds {
            let group = Take::new(&mut source, chunk);
            let stats = engine.execute_round_on(executor, eps, stream.next_u64(), group)?;
            comm.merge(stats);
        }
        Ok(PemOutcome {
            top: engine.top_items()?,
            comm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Eps {
        Eps::new(v).unwrap()
    }

    /// A Zipf-ish population over d items: item i has weight ∝ 1/(i+1)².
    /// Users are shuffled so every PEM round group sees the same mixture.
    fn population(d: u32, n: usize) -> Vec<Option<u32>> {
        let weights: Vec<f64> = (0..d).map(|i| 1.0 / ((i + 1) as f64).powi(2)).collect();
        let total: f64 = weights.iter().sum();
        let mut items = Vec::with_capacity(n);
        let mut acc = 0.0;
        let mut cum = vec![0.0; d as usize];
        for (i, w) in weights.iter().enumerate() {
            acc += w / total;
            cum[i] = acc;
        }
        for u in 0..n {
            let x = (u as f64 + 0.5) / n as f64;
            let item = cum.partition_point(|&c| c < x) as u32;
            items.push(Some(item.min(d - 1)));
        }
        let mut rng = StdRng::seed_from_u64(1234);
        for i in (1..items.len()).rev() {
            let j = rng.random_range(0..=i);
            items.swap(i, j);
        }
        items
    }

    #[test]
    fn engine_round_count() {
        // d = 256 (ℓ=8), k = 4 → γ0 = 4, rounds = 1 + (8−4)/1 = 5.
        let e = PemEngine::new(256, PemConfig::new(4)).unwrap();
        assert_eq!(e.remaining_rounds(), 5);
        assert_eq!(e.candidates().len(), 16);
        // Tiny domain: single direct round.
        let e = PemEngine::new(8, PemConfig::new(4)).unwrap();
        assert_eq!(e.remaining_rounds(), 1);
        assert!(e.is_final_round());
    }

    #[test]
    fn mines_true_heavy_hitters_at_high_eps() {
        let d = 256u32;
        let k = 5;
        let items = population(d, 60_000);
        let pem = Pem::new(d, PemConfig::new(k)).unwrap();
        let out = pem
            .execute(
                eps(6.0),
                &Exec::sequential().seed(42),
                SliceSource::new(&items),
            )
            .unwrap();
        assert!(out.top.len() <= k);
        // With ε=6 and 12k users per round, the true top-3 {0,1,2} must be found.
        for expected in 0..3u32 {
            assert!(
                out.top.contains(&expected),
                "missing item {expected} in {:?}",
                out.top
            );
        }
    }

    #[test]
    fn validity_variant_also_mines() {
        let d = 128u32;
        let k = 4;
        let mut items = population(d, 40_000);
        // A third of users are invalid.
        for (i, it) in items.iter_mut().enumerate() {
            if i % 3 == 0 {
                *it = None;
            }
        }
        let pem = Pem::new(d, PemConfig::new(k).with_validity()).unwrap();
        let out = pem
            .execute(
                eps(6.0),
                &Exec::sequential().seed(43),
                SliceSource::new(&items),
            )
            .unwrap();
        for expected in 0..2u32 {
            assert!(
                out.top.contains(&expected),
                "missing {expected}: {:?}",
                out.top
            );
        }
    }

    #[test]
    fn batch_rounds_are_thread_count_invariant_and_mine_tops() {
        let d = 128u32;
        let k = 4;
        let mut items = population(d, 40_000);
        for (i, it) in items.iter_mut().enumerate() {
            if i % 5 == 0 {
                *it = None;
            }
        }
        for config in [PemConfig::new(k), PemConfig::new(k).with_validity()] {
            let pem = Pem::new(d, config).unwrap();
            let seq = pem
                .execute(
                    eps(6.0),
                    &Exec::batch().seed(11).threads(1),
                    SliceSource::new(&items),
                )
                .unwrap();
            for threads in [2, 8] {
                let par = pem
                    .execute(
                        eps(6.0),
                        &Exec::batch().seed(11).threads(threads),
                        SliceSource::new(&items),
                    )
                    .unwrap();
                assert_eq!(
                    par.top, seq.top,
                    "validity={} threads={threads}",
                    config.validity
                );
                assert_eq!(par.comm, seq.comm);
            }
            // The batched runtime still mines the heavy head.
            for expected in 0..2u32 {
                assert!(
                    seq.top.contains(&expected),
                    "validity={}: missing {expected} in {:?}",
                    config.validity,
                    seq.top
                );
            }
        }
    }

    #[test]
    fn extension_respects_domain_bound() {
        // d = 5 (ℓ=3): candidates never include codes ≥ 5.
        let mut engine = PemEngine::new(5, PemConfig::new(1)).unwrap();
        let mut round = 0u64;
        while engine.remaining_rounds() > 0 {
            let inputs: Vec<Option<u32>> = vec![Some(0); 200];
            engine
                .execute_round(
                    eps(2.0),
                    &Exec::sequential().seed(round),
                    SliceSource::new(&inputs),
                )
                .unwrap();
            round += 1;
        }
        for &item in engine.top_items().unwrap().iter() {
            assert!(item < 5, "item {item} outside domain");
        }
    }

    #[test]
    fn resume_from_external_candidates() {
        let engine = PemEngine::resume(256, PemConfig::new(4), vec![0b0000, 0b0001], 4).unwrap();
        assert_eq!(engine.remaining_rounds(), 5);
        assert_eq!(engine.candidates(), &[0, 1]);
        assert!(PemEngine::resume(256, PemConfig::new(4), vec![], 4).is_err());
        assert!(PemEngine::resume(256, PemConfig::new(4), vec![0], 99).is_err());
    }

    #[test]
    fn top_items_requires_finish() {
        let engine = PemEngine::new(256, PemConfig::new(4)).unwrap();
        assert!(engine.top_items().is_err());
    }

    #[test]
    fn apply_scores_validates_length() {
        let mut engine = PemEngine::new(256, PemConfig::new(4)).unwrap();
        assert!(engine.apply_scores(vec![0.0; 3]).is_err());
        let n = engine.candidates().len();
        assert!(engine.apply_scores(vec![1.0; n]).is_ok());
    }

    #[test]
    fn false_positive_prefix_failure_mode() {
        // Fig. 3's pathology: the most frequent item's prefix is light.
        // Item 0b000 has count 30, but the '0' subtree totals 61 < 63 of
        // the '1' subtree, so prefix pruning at high keep-pressure (k=1,
        // keep_factor=1) drops it. This documents the baseline's weakness
        // that shuffling fixes.
        let counts: [(u32, usize); 8] = [
            (0b000, 30),
            (0b001, 0),
            (0b010, 19),
            (0b011, 12),
            (0b100, 18),
            (0b101, 13),
            (0b110, 15),
            (0b111, 17),
        ];
        let mut items: Vec<Option<u32>> = Vec::new();
        for &(item, c) in &counts {
            items.extend(std::iter::repeat_n(Some(item), c * 200));
        }
        // Deterministic interleave so each round group sees the same mix.
        items.sort_by_key(|x| (x.unwrap() as usize * 2654435761) % 997);
        let config = PemConfig {
            k: 1,
            extend_bits: 1,
            keep_factor: 1,
            validity: false,
        };
        let pem = Pem::new(8, config).unwrap();
        let out = pem
            .execute(
                eps(8.0),
                &Exec::sequential().seed(44),
                SliceSource::new(&items),
            )
            .unwrap();
        assert_ne!(
            out.top,
            vec![0b000],
            "prefix expansion should miss the true top-1 here (Fig. 3)"
        );
    }
}
