//! Bit-prefix encoding of items for trie-based mining (§VI-B).
//!
//! PEM converts top-k mining into frequent-sequence mining: items become
//! `ℓ = ⌈log₂ d⌉`-bit strings and the trie expands from short prefixes to
//! full-length codes. A prefix of length `s` is stored as the integer formed
//! by the top `s` bits.

/// Fixed-width binary code for a domain of `d` items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCode {
    bits: u32,
    domain: u32,
}

impl PrefixCode {
    /// Creates the code for domain `[0, d)`; `ℓ = ⌈log₂ d⌉` (min 1).
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn for_domain(d: u32) -> Self {
        assert!(d > 0, "domain must be non-empty");
        let bits = if d <= 1 {
            1
        } else {
            32 - (d - 1).leading_zeros()
        };
        PrefixCode { bits, domain: d }
    }

    /// Code length `ℓ` in bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The item domain size.
    #[inline]
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// The length-`len` prefix of `item` (top `len` bits of its ℓ-bit code).
    ///
    /// # Panics
    /// Panics if `len > ℓ`.
    #[inline]
    pub fn prefix(&self, item: u32, len: u32) -> u32 {
        assert!(len <= self.bits, "prefix length {len} exceeds code length");
        if len == 0 {
            0
        } else {
            item >> (self.bits - len)
        }
    }

    /// Extends `prefix` (length `len`) by `extend` bits: returns the range
    /// of child prefixes of length `len + extend`.
    #[inline]
    pub fn children(&self, prefix: u32, extend: u32) -> std::ops::Range<u32> {
        let base = prefix << extend;
        base..base + (1 << extend)
    }

    /// Whether a full-length code corresponds to a real item (< d).
    #[inline]
    pub fn is_real_item(&self, code: u32) -> bool {
        code < self.domain
    }

    /// All prefixes of length `len` that have at least one real item
    /// beneath them.
    pub fn live_prefixes(&self, len: u32) -> Vec<u32> {
        assert!(len <= self.bits);
        let last = self.prefix(self.domain - 1, len);
        (0..=last).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_lengths() {
        assert_eq!(PrefixCode::for_domain(1).bits(), 1);
        assert_eq!(PrefixCode::for_domain(2).bits(), 1);
        assert_eq!(PrefixCode::for_domain(3).bits(), 2);
        assert_eq!(PrefixCode::for_domain(1024).bits(), 10);
        assert_eq!(PrefixCode::for_domain(1025).bits(), 11);
    }

    #[test]
    fn prefixes_nest() {
        let code = PrefixCode::for_domain(256); // ℓ = 8
        let item = 0b1011_0110u32;
        assert_eq!(code.prefix(item, 0), 0);
        assert_eq!(code.prefix(item, 1), 0b1);
        assert_eq!(code.prefix(item, 4), 0b1011);
        assert_eq!(code.prefix(item, 8), item);
        // A longer prefix extends the shorter one.
        for len in 1..8 {
            assert_eq!(code.prefix(item, len), code.prefix(item, len + 1) >> 1);
        }
    }

    #[test]
    fn children_cover_exactly_the_subtree() {
        let code = PrefixCode::for_domain(256);
        let kids: Vec<u32> = code.children(0b101, 2).collect();
        assert_eq!(kids, vec![0b10100, 0b10101, 0b10110, 0b10111]);
        // Every item whose 5-bit prefix is a child has 3-bit prefix 0b101.
        for &kid in &kids {
            assert_eq!(kid >> 2, 0b101);
        }
    }

    #[test]
    fn live_prefixes_trim_empty_subtrees() {
        // d = 5 → ℓ = 3; codes 0..=4. Length-2 prefixes: 0b00, 0b01, 0b10
        // (items 0-1, 2-3, 4) — 0b11 has no item.
        let code = PrefixCode::for_domain(5);
        assert_eq!(code.live_prefixes(2), vec![0, 1, 2]);
        assert_eq!(code.live_prefixes(3), vec![0, 1, 2, 3, 4]);
        assert!(code.is_real_item(4));
        assert!(!code.is_real_item(5));
    }

    #[test]
    fn non_power_of_two_round_trip() {
        let code = PrefixCode::for_domain(1000); // ℓ = 10
        for item in [0u32, 1, 511, 999] {
            assert_eq!(code.prefix(item, 10), item);
            assert!(code.is_real_item(item));
        }
    }
}
