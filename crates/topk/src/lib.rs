//! # mcim-topk
//!
//! Multi-class top-k item mining under LDP (§VI-B of *Multi-class Item
//! Mining under Local Differential Privacy*, ICDE 2025).
//!
//! Substrate and contribution in one crate:
//!
//! * [`encoding`] — bit-prefix codes for trie mining,
//! * [`pem`] — the PEM prefix-extension baseline (Wang et al. TDSC 2021),
//!   with optional validity perturbation,
//! * [`shuffle`] — the paper's seeded bucket-shuffling scheme with
//!   user-side candidate reconstruction (Fig. 4),
//! * [`multiclass`] — HEC / PTJ / PTS top-k methods, including the full
//!   Algorithms 1 & 2 pipeline (`PTS-Shuffling+VP+CP`) and every Table III
//!   ablation.
//!
//! ```
//! use mcim_core::{Domains, LabelItem};
//! use mcim_oracles::exec::Exec;
//! use mcim_oracles::stream::SliceSource;
//! use mcim_oracles::Eps;
//! use mcim_topk::{execute, TopKConfig, TopKMethod};
//!
//! // Two classes with distinct favourite items.
//! let domains = Domains::new(2, 32).unwrap();
//! let data: Vec<LabelItem> = (0..40_000)
//!     .map(|u| {
//!         let label = (u % 2) as u32;
//!         let item = if u % 3 == 0 { label * 16 + 1 } else { label * 16 };
//!         LabelItem::new(label, item)
//!     })
//!     .collect();
//! let result = execute(
//!     TopKMethod::PtsShuffled { validity: true, global: true, correlated: true },
//!     TopKConfig::new(2, Eps::new(8.0).unwrap()),
//!     domains,
//!     &Exec::seeded(5),
//!     SliceSource::new(&data),
//! )
//! .unwrap();
//! assert!(result.per_class[0].contains(&0));
//! assert!(result.per_class[1].contains(&16));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoding;
pub mod multiclass;
pub mod pem;
pub mod shuffle;

pub use multiclass::{execute, execute_on, NoiseTest, TopKConfig, TopKMethod, TopKResult};
pub use pem::{Pem, PemConfig, PemEngine, PemOracleRoundStage, PemOutcome, PemVpRoundStage};
pub use shuffle::{replay, CompletedRound, ShuffleEngine};
