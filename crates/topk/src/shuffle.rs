//! The shuffling-based candidate-pruning scheme (§VI-B, Fig. 4).
//!
//! PEM's prefix trie produces *false positive prefixes*: a heavy item under
//! a light prefix is pruned before it can surface (Fig. 3). The paper's fix
//! decouples prefix groups by **shuffling**: each round the surviving
//! candidate set is permuted with a fresh public seed and split into
//! equal-size buckets; users report their item's *bucket* under the LDP
//! mechanism; the heaviest half of the buckets survives. Because groupings
//! are re-randomized every round, no item is permanently tied to light
//! companions.
//!
//! Communication: the server broadcasts only `(seed, bucket bitmask)` per
//! past round — each user replays the shuffle history locally to find her
//! item's current bucket ([`replay`] is that shared client/server code
//! path; determinism is guaranteed by [`mcim_oracles::hash::SplitMix64`],
//! not by `rand` internals).

use std::collections::HashMap;

use mcim_oracles::hash::SplitMix64;

/// Balanced contiguous bucket assignment: position `pos` of `n` shuffled
/// candidates into `buckets` buckets. Buckets differ in size by at most 1.
#[inline]
pub fn bucket_of(pos: usize, n: usize, buckets: usize) -> usize {
    debug_assert!(pos < n, "position out of range");
    (pos as u128 * buckets as u128 / n as u128) as usize
}

/// One completed shuffle round: everything a late-joining user needs.
#[derive(Debug, Clone)]
pub struct CompletedRound {
    /// Public shuffle seed.
    pub seed: u64,
    /// Number of buckets the candidates were split into.
    pub buckets: usize,
    /// Which buckets survived pruning.
    pub surviving: Vec<bool>,
}

impl CompletedRound {
    /// Broadcast size of this round's metadata in bits (64-bit seed + one
    /// bit per bucket).
    pub fn broadcast_bits(&self) -> usize {
        64 + self.buckets
    }
}

/// Replays a shuffle history: from the initial candidates and the completed
/// rounds, reconstructs the current candidate set. Client and server run
/// this identical function (Fig. 4's "current shuffled result").
pub fn replay(initial: &[u32], rounds: &[CompletedRound]) -> Vec<u32> {
    let mut candidates = initial.to_vec();
    for round in rounds {
        let mut shuffled = candidates;
        SplitMix64::new(round.seed).shuffle(&mut shuffled);
        let n = shuffled.len();
        candidates = shuffled
            .into_iter()
            .enumerate()
            .filter(|&(pos, _)| round.surviving[bucket_of(pos, n, round.buckets)])
            .map(|(_, item)| item)
            .collect();
    }
    candidates
}

/// A live round: the shuffled view plus an item → bucket index.
#[derive(Debug, Clone)]
pub struct RoundView {
    seed: u64,
    buckets: usize,
    n: usize,
    item_bucket: HashMap<u32, u32>,
}

impl RoundView {
    /// The bucket holding `item`, or `None` if the item was pruned in an
    /// earlier round (i.e. it is *invalid* now).
    #[inline]
    pub fn bucket_of_item(&self, item: u32) -> Option<u32> {
        self.item_bucket.get(&item).copied()
    }

    /// Number of buckets.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Number of live candidates in this round.
    #[inline]
    pub fn candidate_count(&self) -> usize {
        self.n
    }
}

/// Server-side shuffle state across rounds.
#[derive(Debug, Clone)]
pub struct ShuffleEngine {
    initial: Vec<u32>,
    rounds: Vec<CompletedRound>,
    candidates: Vec<u32>,
    /// Pending (seed, buckets) for the round currently in flight.
    pending: Option<(u64, usize)>,
}

impl ShuffleEngine {
    /// Creates the engine over an initial candidate set.
    pub fn new(initial: Vec<u32>) -> Self {
        ShuffleEngine {
            candidates: initial.clone(),
            initial,
            rounds: Vec::new(),
            pending: None,
        }
    }

    /// The total round count the paper prescribes:
    /// `IT = ⌈log₂(d/4k)⌉ + 1` (Algorithm 1 line 1), minimum 1.
    pub fn total_rounds(domain: usize, k: usize) -> usize {
        let target = 4 * k.max(1);
        if domain <= target {
            return 1;
        }
        let ratio = domain as f64 / target as f64;
        ratio.log2().ceil() as usize + 1
    }

    /// Current candidates.
    pub fn candidates(&self) -> &[u32] {
        &self.candidates
    }

    /// Completed round metadata (what the server has broadcast so far).
    pub fn rounds(&self) -> &[CompletedRound] {
        &self.rounds
    }

    /// Total broadcast (downlink) bits a user joining now must receive.
    pub fn broadcast_bits(&self) -> usize {
        self.rounds.iter().map(CompletedRound::broadcast_bits).sum()
    }

    /// Begins a pruning round: shuffles the candidates under `seed` into
    /// `buckets` buckets and returns the view used to route user items.
    pub fn begin_round(&mut self, seed: u64, buckets: usize) -> RoundView {
        let mut shuffled = self.candidates.clone();
        SplitMix64::new(seed).shuffle(&mut shuffled);
        let n = shuffled.len();
        let buckets = buckets.min(n.max(1));
        let item_bucket = shuffled
            .iter()
            .enumerate()
            .map(|(pos, &item)| (item, bucket_of(pos, n, buckets) as u32))
            .collect();
        self.pending = Some((seed, buckets));
        RoundView {
            seed,
            buckets,
            n,
            item_bucket,
        }
    }

    /// Completes the pending round: keeps the `keep` heaviest buckets
    /// (ties broken by bucket index) and prunes the candidate set.
    ///
    /// # Panics
    /// Panics if no round is pending or `scores` does not match the bucket
    /// count — engine-internal misuse, not data-dependent.
    pub fn complete_round(&mut self, view: &RoundView, scores: &[f64], keep: usize) {
        // mcim-lint: allow(panic-freedom, the documented # Panics contract for engine-internal misuse)
        let (seed, buckets) = self.pending.take().expect("no round in flight");
        assert_eq!(seed, view.seed, "view does not match pending round");
        assert_eq!(scores.len(), buckets, "one score per bucket required");
        let mut order: Vec<usize> = (0..buckets).collect();
        order.sort_unstable_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut surviving = vec![false; buckets];
        for &b in order.iter().take(keep) {
            surviving[b] = true;
        }
        self.rounds.push(CompletedRound {
            seed,
            buckets,
            surviving,
        });
        self.candidates = replay(&self.initial, &self.rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment_is_balanced() {
        let n = 103;
        let buckets = 10;
        let mut sizes = vec![0usize; buckets];
        for pos in 0..n {
            sizes[bucket_of(pos, n, buckets)] += 1;
        }
        assert_eq!(sizes.iter().sum::<usize>(), n);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn total_rounds_formula() {
        // d = 2048, k = 20: ceil(log2(2048/80)) + 1 = ceil(4.678)+1 = 6.
        assert_eq!(ShuffleEngine::total_rounds(2048, 20), 6);
        // Degenerate: domain already ≤ 4k.
        assert_eq!(ShuffleEngine::total_rounds(64, 20), 1);
        assert_eq!(ShuffleEngine::total_rounds(1, 1), 1);
    }

    #[test]
    fn replay_matches_server_state() {
        // The user-side reconstruction must equal the server's candidate
        // set after any number of rounds — this is the Fig. 4 protocol
        // invariant.
        let initial: Vec<u32> = (0..200).collect();
        let mut engine = ShuffleEngine::new(initial.clone());
        for round in 0..3 {
            let view = engine.begin_round(1234 + round, 16);
            // Score buckets by an arbitrary deterministic rule.
            let scores: Vec<f64> = (0..view.buckets())
                .map(|b| ((b * 7 + round as usize) % 13) as f64)
                .collect();
            engine.complete_round(&view, &scores, 8);
            let user_side = replay(&initial, engine.rounds());
            assert_eq!(user_side, engine.candidates(), "round {round}");
        }
        // Three halvings: 200 → ~100 → ~50 → ~25 (±bucket granularity,
        // since surviving buckets differ in size by at most one).
        let len = engine.candidates().len();
        assert!(
            (22..=28).contains(&len),
            "candidate count {len} after 3 halvings"
        );
    }

    #[test]
    fn round_view_routes_members_and_rejects_pruned() {
        let initial: Vec<u32> = (0..64).collect();
        let mut engine = ShuffleEngine::new(initial);
        let view = engine.begin_round(5, 8);
        // Every candidate has a bucket; buckets are in range.
        for item in 0..64u32 {
            let b = view.bucket_of_item(item).expect("live item");
            assert!(b < 8);
        }
        let scores = vec![1.0; 8];
        engine.complete_round(&view, &scores, 4);
        // Pruned items are now invalid in the next round's view.
        let view2 = engine.begin_round(6, 8);
        let live = engine.candidates().to_vec();
        for item in 0..64u32 {
            assert_eq!(view2.bucket_of_item(item).is_some(), live.contains(&item));
        }
        assert_eq!(live.len(), 32);
    }

    #[test]
    fn different_seeds_decouple_groupings() {
        // The core anti-false-positive property: two rounds with different
        // seeds should not group the same items together.
        let initial: Vec<u32> = (0..256).collect();
        let mut e1 = ShuffleEngine::new(initial.clone());
        let mut e2 = ShuffleEngine::new(initial);
        let v1 = e1.begin_round(100, 16);
        let v2 = e2.begin_round(200, 16);
        let same = (0..256u32)
            .filter(|&i| v1.bucket_of_item(i) == v2.bucket_of_item(i))
            .count();
        // Random agreement rate ≈ 1/16.
        assert!(same < 50, "groupings should differ, {same} agreed");
    }

    #[test]
    fn broadcast_accounting() {
        let mut engine = ShuffleEngine::new((0..128).collect());
        let view = engine.begin_round(1, 32);
        engine.complete_round(&view, &vec![0.0; 32], 16);
        assert_eq!(engine.broadcast_bits(), 64 + 32);
    }

    #[test]
    fn buckets_capped_at_candidate_count() {
        let mut engine = ShuffleEngine::new((0..4).collect());
        let view = engine.begin_round(9, 100);
        assert_eq!(
            view.buckets(),
            4,
            "cannot have more buckets than candidates"
        );
        assert_eq!(view.candidate_count(), 4);
    }
}
