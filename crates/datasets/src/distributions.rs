//! Sampling distributions used by the dataset generators.
//!
//! All samplers are seed-deterministic and implemented from scratch (no
//! `rand_distr`): a truncated exponential-rank sampler (the paper's SYN3/4
//! item model), a Zipf power law (simulated real-world popularity), a
//! general categorical sampler, and Box–Muller normals (SYN3/4 class sizes).

use rand::Rng;

/// Truncated exponential distribution over ranks `0..d`:
/// `P(r) ∝ exp(−β·r)` — the paper's "items are drawn from the exponential
/// distribution with the scale from 0.01 to 0.1" (§VII-A).
#[derive(Debug, Clone)]
pub struct ExpRank {
    beta: f64,
    d: u32,
    /// `1 − e^{−β·d}`, the truncation mass.
    total_mass: f64,
}

impl ExpRank {
    /// Creates the sampler. `beta > 0`, `d ≥ 1`.
    ///
    /// # Panics
    /// Panics on non-positive `beta` or zero `d` (generator-internal misuse).
    pub fn new(beta: f64, d: u32) -> Self {
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
        assert!(d >= 1, "domain must be non-empty");
        ExpRank {
            beta,
            d,
            total_mass: -(-beta * d as f64).exp_m1(),
        }
    }

    /// Probability of rank `r`.
    pub fn pmf(&self, r: u32) -> f64 {
        if r >= self.d {
            return 0.0;
        }
        let cell = -(-self.beta).exp_m1(); // 1 − e^{−β}
        (-self.beta * r as f64).exp() * cell / self.total_mass
    }

    /// Samples a rank by inverse CDF (O(1)).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.random::<f64>() * self.total_mass;
        // CDF(r) = (1 − e^{−β(r+1)}) / total_mass  ⇒ invert for r.
        let r = (-(-u).ln_1p() / self.beta).floor() as i64;
        r.clamp(0, self.d as i64 - 1) as u32
    }
}

/// Zipf power-law over ranks `0..d`: `P(r) ∝ 1/(r+1)^s`.
///
/// Sampled through a precomputed CDF (binary search, O(log d)); the
/// real-world-like datasets use it for item popularity.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the sampler with exponent `s > 0` over `d` ranks.
    ///
    /// # Panics
    /// Panics on invalid parameters (generator-internal misuse).
    pub fn new(s: f64, d: u32) -> Self {
        assert!(s > 0.0 && s.is_finite(), "exponent must be positive");
        assert!(d >= 1, "domain must be non-empty");
        let mut cdf = Vec::with_capacity(d as usize);
        let mut acc = 0.0;
        for r in 0..d {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Probability of rank `r`.
    pub fn pmf(&self, r: u32) -> f64 {
        let r = r as usize;
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Samples a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

/// Categorical distribution over arbitrary non-negative weights.
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Creates the sampler from weights (at least one must be positive).
    ///
    /// # Panics
    /// Panics if all weights are zero/negative (generator-internal misuse).
    pub fn new(weights: &[f64]) -> Self {
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        for v in &mut cdf {
            *v /= acc;
        }
        Categorical { cdf }
    }

    /// Samples an index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.random();
        (self.cdf.partition_point(|&c| c < u)).min(self.cdf.len() - 1) as u32
    }
}

/// One standard-normal draw via Box–Muller.
pub fn normal<R: Rng + ?Sized>(mean: f64, std: f64, rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_rank_pmf_normalizes_and_decays() {
        let e = ExpRank::new(0.05, 100);
        let total: f64 = (0..100).map(|r| e.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(e.pmf(0) > e.pmf(1));
        assert!(e.pmf(10) > e.pmf(50));
        assert_eq!(e.pmf(100), 0.0);
    }

    #[test]
    fn exp_rank_samples_match_pmf() {
        let e = ExpRank::new(0.1, 50);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[e.sample(&mut rng) as usize] += 1;
        }
        for r in [0u32, 1, 5, 10, 20] {
            let emp = counts[r as usize] as f64 / n as f64;
            let exp = e.pmf(r);
            assert!((emp - exp).abs() < 0.01, "r={r}: emp {emp} vs pmf {exp}");
        }
        assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), n);
    }

    #[test]
    fn zipf_pmf_normalizes_and_is_heavy_headed() {
        let z = Zipf::new(1.2, 1000);
        let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.pmf(0) > 10.0 * z.pmf(100));
    }

    #[test]
    fn zipf_samples_match_pmf() {
        let z = Zipf::new(1.0, 64);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut counts = vec![0u32; 64];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for r in [0u32, 1, 7, 31] {
            let emp = counts[r as usize] as f64 / n as f64;
            assert!((emp - z.pmf(r)).abs() < 0.01, "r={r}");
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let c = Categorical::new(&[1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[c.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket never sampled");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "total weight")]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn normal_mean_and_std() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = normal(10.0, 3.0, &mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }
}
