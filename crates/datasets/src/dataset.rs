//! The dataset container and its exact ground-truth statistics.

use mcim_core::{Domains, FrequencyTable, LabelItem};
use rand::Rng;

/// A multi-class item-mining dataset: one label-item pair per user.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name (appears in benchmark output).
    pub name: String,
    /// Class / item domain sizes.
    pub domains: Domains,
    /// One pair per user.
    pub pairs: Vec<LabelItem>,
}

impl Dataset {
    /// Creates a dataset, validating every pair against the domains.
    pub fn new(
        name: impl Into<String>,
        domains: Domains,
        pairs: Vec<LabelItem>,
    ) -> mcim_oracles::Result<Self> {
        for &p in &pairs {
            domains.check(p)?;
        }
        Ok(Dataset {
            name: name.into(),
            domains,
            pairs,
        })
    }

    /// Creates a dataset from pairs the caller constructed in-domain (the
    /// generator crates build every pair from indices bounded by the same
    /// `domains` value). Validation still runs in debug builds.
    pub fn pre_validated(name: impl Into<String>, domains: Domains, pairs: Vec<LabelItem>) -> Self {
        debug_assert!(
            pairs.iter().all(|&p| domains.check(p).is_ok()),
            "pre_validated pairs must lie inside the domains"
        );
        Dataset {
            name: name.into(),
            domains,
            pairs,
        }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the dataset has no users.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Exact classwise counts `f(C, I)`.
    pub fn ground_truth(&self) -> FrequencyTable {
        FrequencyTable::ground_truth(self.domains, &self.pairs)
            // mcim-lint: allow(panic-freedom, every constructor validates pairs against the domains; the fields are pub so this invariant is advisory and a panic here means a caller broke it upstream)
            .expect("pairs were validated at construction")
    }

    /// Exact class sizes `n(C)`.
    pub fn class_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.domains.classes() as usize];
        for p in &self.pairs {
            sizes[p.label as usize] += 1;
        }
        sizes
    }

    /// The true top-`k` items of every class (descending frequency, ties by
    /// item id). Index = class.
    pub fn true_top_k(&self, k: usize) -> Vec<Vec<u32>> {
        let truth = self.ground_truth();
        (0..self.domains.classes())
            .map(|c| truth.top_k(c, k))
            .collect()
    }

    /// Shuffles user order in place (deterministic given the RNG); useful
    /// because group assignments in HEC/PEM partition users by position.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates over the pair vector.
        for i in (1..self.pairs.len()).rev() {
            let j = rng.random_range(0..=i);
            self.pairs.swap(i, j);
        }
    }

    /// Splits off the first `⌈frac·N⌉` users (Algorithm 1's candidate
    /// sample) and returns `(sample, remainder)` as borrowed slices.
    pub fn split_frac(&self, frac: f64) -> (&[LabelItem], &[LabelItem]) {
        let cut = ((self.pairs.len() as f64 * frac).ceil() as usize).min(self.pairs.len());
        self.pairs.split_at(cut)
    }
}

/// A dataset partitioned into per-feature groups (the paper's Diabetes /
/// Heart-Disease setup: users are divided into groups, each mining the
/// label-value pairs of a single feature).
#[derive(Debug, Clone)]
pub struct GroupedDataset {
    /// Human-readable name.
    pub name: String,
    /// One independent mining task per feature.
    pub groups: Vec<Dataset>,
}

impl GroupedDataset {
    /// Total user count across groups.
    pub fn len(&self) -> usize {
        self.groups.iter().map(Dataset::len).sum()
    }

    /// Whether all groups are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Dataset {
        let domains = Domains::new(2, 4).unwrap();
        Dataset::new(
            "tiny",
            domains,
            vec![
                LabelItem::new(0, 0),
                LabelItem::new(0, 0),
                LabelItem::new(0, 1),
                LabelItem::new(1, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_pairs() {
        let domains = Domains::new(2, 4).unwrap();
        assert!(Dataset::new("bad", domains, vec![LabelItem::new(2, 0)]).is_err());
    }

    #[test]
    fn ground_truth_and_class_sizes() {
        let ds = tiny();
        let t = ds.ground_truth();
        assert_eq!(t.get(0, 0), 2.0);
        assert_eq!(t.get(1, 3), 1.0);
        assert_eq!(ds.class_sizes(), vec![3, 1]);
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn true_top_k_per_class() {
        let ds = tiny();
        let tops = ds.true_top_k(2);
        assert_eq!(tops[0], vec![0, 1]);
        assert_eq!(tops[1][0], 3);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut ds = tiny();
        let mut before = ds.pairs.clone();
        let mut rng = StdRng::seed_from_u64(1);
        ds.shuffle(&mut rng);
        let mut after = ds.pairs.clone();
        before.sort_by_key(|p| (p.label, p.item));
        after.sort_by_key(|p| (p.label, p.item));
        assert_eq!(before, after);
    }

    #[test]
    fn split_frac_covers_all_users() {
        let ds = tiny();
        let (a, b) = ds.split_frac(0.3);
        assert_eq!(a.len() + b.len(), 4);
        assert_eq!(a.len(), 2, "ceil(0.3·4) = 2");
        let (a, b) = ds.split_frac(1.0);
        assert_eq!(a.len(), 4);
        assert!(b.is_empty());
    }
}
