//! Simulated stand-ins for the paper's four real-world datasets (§VII-A).
//!
//! The originals are Kaggle downloads unavailable in this environment; per
//! DESIGN.md §2.4 each generator reproduces every statistic the paper
//! reports (user counts, class structure, domain sizes, skew, global-item
//! overlap) so the LDP pipelines exercise the same code paths and exhibit
//! the same utility orderings. All generators are seed-deterministic.

use mcim_core::{Domains, LabelItem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, GroupedDataset};
use crate::distributions::{normal, Categorical, Zipf};

/// Scale knob shared by the real-world-like generators: `users` is the
/// total population before feature partitioning, `items` caps large item
/// domains (Anime/JD), `seed` fixes the generation.
#[derive(Debug, Clone, Copy)]
pub struct RealConfig {
    /// Total number of users.
    pub users: usize,
    /// Item-domain cap for the large-domain datasets.
    pub items: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RealConfig {
    fn default() -> Self {
        RealConfig {
            users: 200_000,
            items: 2048,
            seed: 0xDA7A,
        }
    }
}

/// Feature domains of the Diabetes-like dataset: 8 features, largest ≈ 600
/// (the paper: "eight features … the largest feature domain containing
/// about 600 items").
pub const DIABETES_FEATURE_DOMAINS: [u32; 8] = [2, 10, 21, 43, 86, 171, 342, 600];

/// Simulated *Comprehensive Diabetes Clinical Dataset*: binary diabetes
/// label (≈8.5% positive), 8 feature groups; each user contributes the
/// (label, feature-value) pair of her assigned feature. Feature values are
/// discretized normals whose mean shifts with the label, mimicking
/// clinical measurements.
pub fn diabetes_like(config: RealConfig) -> GroupedDataset {
    feature_dataset(
        "Diabetes",
        &DIABETES_FEATURE_DOMAINS,
        0.085,
        config.users,
        config.seed,
    )
}

/// Feature domains of the Heart-Disease-like dataset: 21 categorical
/// features with maximum domain 84 (paper: "21 categorical features, with
/// the largest item domain being 84").
pub const HEART_FEATURE_DOMAINS: [u32; 21] = [
    2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 5, 6, 6, 13, 14, 30, 31, 84,
];

/// Simulated *Heart Disease Health Indicators* (BRFSS 2015): binary label
/// (≈9.4% positive), 21 feature groups.
pub fn heart_like(config: RealConfig) -> GroupedDataset {
    feature_dataset(
        "HeartDisease",
        &HEART_FEATURE_DOMAINS,
        0.094,
        config.users,
        config.seed,
    )
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
fn random_permutation(n: u32, rng: &mut StdRng) -> Vec<u32> {
    let mut p: Vec<u32> = (0..n).collect();
    for i in (1..p.len()).rev() {
        let j = rng.random_range(0..=i);
        p.swap(i, j);
    }
    p
}

fn feature_dataset(
    name: &str,
    feature_domains: &[u32],
    positive_rate: f64,
    users: usize,
    seed: u64,
) -> GroupedDataset {
    // mcim-lint: allow(rng-discipline, generator stream seeded from the caller's explicit seed parameter; not a privatization stage)
    let mut rng = StdRng::seed_from_u64(seed);
    let per_group = users / feature_domains.len();
    let mut groups = Vec::with_capacity(feature_domains.len());
    for (fi, &d) in feature_domains.iter().enumerate() {
        let domains = Domains::of(2, d);
        // Label-dependent discretized normal over the feature values:
        // positives shift ~0.8σ upward (clinical signal).
        let mean_neg = d as f64 * 0.45;
        let mean_pos = d as f64 * 0.62;
        let std = (d as f64 * 0.18).max(0.5);
        let mut pairs = Vec::with_capacity(per_group);
        for _ in 0..per_group {
            let label = u32::from(rng.random_bool(positive_rate));
            let mean = if label == 1 { mean_pos } else { mean_neg };
            let value = normal(mean, std, &mut rng)
                .round()
                .clamp(0.0, d as f64 - 1.0) as u32;
            pairs.push(LabelItem::new(label, value));
        }
        groups.push(Dataset::pre_validated(
            format!("{name}/feature{fi}(d={d})"),
            domains,
            pairs,
        ));
    }
    GroupedDataset {
        name: name.to_string(),
        groups,
    }
}

/// Simulated *MyAnimeList*: 2 gender classes (≈58/42 split), large title
/// domain, Zipf popularity (s = 1.1) with a **shared global ranking** —
/// both genders watch largely the same top titles, with mild per-class
/// rank jitter. This is the high-overlap regime where the paper's
/// globally-frequent-candidate optimization shines (§VII-E).
pub fn anime_like(config: RealConfig) -> Dataset {
    let RealConfig { users, items, seed } = config;
    let domains = Domains::of(2, items);
    // mcim-lint: allow(rng-discipline, generator stream seeded from the caller's explicit seed parameter; not a privatization stage)
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(0.85, items);
    // Item ids carry no popularity information: ranks map to ids through a
    // global random permutation (real catalog ids are arbitrary). Per-class
    // jitter then reorders a few head ranks so the classes' top lists
    // differ in order but overlap heavily in membership.
    let base = random_permutation(items, &mut rng);
    let mappings: Vec<Vec<u32>> = (0..2)
        .map(|_| {
            let mut m = base.clone();
            let head = (items as usize / 32).clamp(4, 16);
            for r in 0..head / 2 {
                let other = rng.random_range(0..head);
                m.swap(r, other);
            }
            m
        })
        .collect();
    let mut pairs = Vec::with_capacity(users);
    for _ in 0..users {
        let label = u32::from(!rng.random_bool(0.58));
        let rank = zipf.sample(&mut rng);
        pairs.push(LabelItem::new(
            label,
            mappings[label as usize][rank as usize],
        ));
    }
    let mut ds = Dataset::pre_validated("Anime", domains, pairs);
    ds.shuffle(&mut rng);
    ds
}

/// The paper's per-class record counts for the JD dataset
/// (850k / 4M / 3M / 314k / 170k), used as class-weight proportions.
pub const JD_CLASS_WEIGHTS: [f64; 5] = [850_000.0, 4_000_000.0, 3_000_000.0, 314_000.0, 170_000.0];

/// Simulated *JD Contest* sale records: 5 age-group classes with the
/// paper's heavily imbalanced sizes, Zipf item popularity (s = 1.05) over a
/// shared global ranking plus small per-class preference jitter. Classes 4
/// and 5 are tiny — the regime where PTJ "fails to produce results"
/// (Fig. 8) while PTS recovers via global candidates.
pub fn jd_like(config: RealConfig) -> Dataset {
    let RealConfig { users, items, seed } = config;
    let domains = Domains::of(5, items);
    // mcim-lint: allow(rng-discipline, generator stream seeded from the caller's explicit seed parameter; not a privatization stage)
    let mut rng = StdRng::seed_from_u64(seed);
    let class_dist = Categorical::new(&JD_CLASS_WEIGHTS);
    let zipf = Zipf::new(0.9, items);
    // Ranks map to ids through a global random permutation (ids carry no
    // popularity signal); age groups get a somewhat stronger head jitter
    // than the anime genders — distinct but overlapping preferences.
    let base = random_permutation(items, &mut rng);
    let mappings: Vec<Vec<u32>> = (0..5)
        .map(|_| {
            let mut m = base.clone();
            let head = (items as usize / 16).clamp(8, 64);
            for r in 0..head / 2 {
                let other = rng.random_range(0..head);
                m.swap(r, other);
            }
            m
        })
        .collect();
    let mut pairs = Vec::with_capacity(users);
    for _ in 0..users {
        let label = class_dist.sample(&mut rng);
        let rank = zipf.sample(&mut rng);
        pairs.push(LabelItem::new(
            label,
            mappings[label as usize][rank as usize],
        ));
    }
    let mut ds = Dataset::pre_validated("JD", domains, pairs);
    ds.shuffle(&mut rng);
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn diabetes_structure_matches_paper() {
        let ds = diabetes_like(RealConfig {
            users: 80_000,
            items: 0, // unused by feature datasets
            seed: 1,
        });
        assert_eq!(ds.groups.len(), 8);
        assert_eq!(ds.groups.last().unwrap().domains.items(), 600);
        // Positive rate near the configured prevalence in each group.
        for g in &ds.groups {
            let sizes = g.class_sizes();
            let rate = sizes[1] as f64 / g.len() as f64;
            assert!((rate - 0.085).abs() < 0.02, "{}: rate {rate}", g.name);
        }
    }

    #[test]
    fn heart_has_21_features_max_domain_84() {
        let ds = heart_like(RealConfig {
            users: 42_000,
            items: 0,
            seed: 2,
        });
        assert_eq!(ds.groups.len(), 21);
        let max_d = ds.groups.iter().map(|g| g.domains.items()).max().unwrap();
        assert_eq!(max_d, 84);
    }

    #[test]
    fn label_shifts_feature_distribution() {
        // The diabetes signal: positives should have a higher mean value.
        let ds = diabetes_like(RealConfig {
            users: 160_000,
            items: 0,
            seed: 3,
        });
        let g = &ds.groups[7]; // largest domain
        let (mut sum_pos, mut n_pos, mut sum_neg, mut n_neg) = (0.0, 0.0, 0.0, 0.0);
        for p in &g.pairs {
            if p.label == 1 {
                sum_pos += p.item as f64;
                n_pos += 1.0;
            } else {
                sum_neg += p.item as f64;
                n_neg += 1.0;
            }
        }
        assert!(sum_pos / n_pos > sum_neg / n_neg + 50.0);
    }

    #[test]
    fn anime_classes_share_top_titles() {
        let ds = anime_like(RealConfig {
            users: 120_000,
            items: 512,
            seed: 4,
        });
        let tops = ds.true_top_k(20);
        let a: HashSet<u32> = tops[0].iter().copied().collect();
        let overlap = tops[1].iter().filter(|i| a.contains(i)).count();
        assert!(
            overlap >= 12,
            "genders should share top titles, got {overlap}"
        );
        let sizes = ds.class_sizes();
        let rate = sizes[0] as f64 / ds.len() as f64;
        assert!((rate - 0.58).abs() < 0.02, "gender split {rate}");
    }

    #[test]
    fn jd_class_imbalance_matches_paper_proportions() {
        let ds = jd_like(RealConfig {
            users: 300_000,
            items: 512,
            seed: 5,
        });
        let sizes = ds.class_sizes();
        let total: u64 = sizes.iter().sum();
        let weight_total: f64 = JD_CLASS_WEIGHTS.iter().sum();
        for (c, &w) in JD_CLASS_WEIGHTS.iter().enumerate() {
            let expected = w / weight_total;
            let actual = sizes[c] as f64 / total as f64;
            assert!(
                (actual - expected).abs() < 0.01,
                "class {c}: {actual} vs {expected}"
            );
        }
        // Classes 2 and 3 dominate; classes 4 and 5 are tiny (Fig. 8 setup).
        assert!(sizes[1] > 10 * sizes[4]);
    }

    #[test]
    fn generators_are_deterministic() {
        let cfg = RealConfig {
            users: 10_000,
            items: 256,
            seed: 9,
        };
        assert_eq!(anime_like(cfg).pairs, anime_like(cfg).pairs);
        assert_eq!(jd_like(cfg).pairs, jd_like(cfg).pairs);
    }
}
