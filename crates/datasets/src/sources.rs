//! Streaming [`ReportSource`] backends: files on disk and synthetic
//! generators, so paper-scale (5–9M user) runs never materialize the whole
//! user population in memory.
//!
//! * [`NdjsonPairSource`] — newline-delimited JSON, one
//!   `{"label": c, "item": i}` object per line (field order free,
//!   whitespace tolerated). Malformed lines fail with the 1-based line
//!   number.
//! * [`CsvPairSource`] — the CLI's `label,item` CSV, with an optional
//!   header, read line-buffered instead of `read_to_string`.
//! * [`SyntheticPairSource`] — a seeded generator producing Zipf-per-class
//!   pairs on the fly (the stream-ingestion benchmark's 5M-user workload
//!   costs no input memory at all).

use std::io::BufRead;
use std::path::{Path, PathBuf};

use mcim_core::LabelItem;
use mcim_oracles::stream::ReportSource;
use mcim_oracles::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::Zipf;

/// Maps an I/O error to [`Error::Source`] naming the file.
fn io_err(path: &Path, e: std::io::Error) -> Error {
    Error::Source {
        message: format!("{}: {e}", path.display()),
    }
}

/// A position-aware parse failure: [`Error::Source`] naming file and line.
fn line_err(path: &Path, lineno: u64, what: &str) -> Error {
    Error::Source {
        message: format!("{} line {lineno}: {what}", path.display()),
    }
}

/// The shared line-pulling machinery behind both file-backed pair sources:
/// buffered reading, 1-based line counting, and I/O-error wrapping live
/// here exactly once; the formats differ only in their line parser.
#[derive(Debug)]
struct PairFile {
    path: PathBuf,
    reader: std::io::Lines<std::io::BufReader<std::fs::File>>,
    lineno: u64,
    yielded: u64,
}

impl PairFile {
    fn open(path: &Path) -> Result<Self> {
        let file = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
        Ok(PairFile {
            path: path.to_path_buf(),
            reader: std::io::BufReader::new(file).lines(),
            lineno: 0,
            yielded: 0,
        })
    }

    /// Pulls up to `max` pairs, parsing each line with `parse` (which
    /// returns `Ok(None)` for skippable lines — blanks, headers).
    fn fill_with(
        &mut self,
        buf: &mut Vec<LabelItem>,
        max: usize,
        parse: impl Fn(&Path, u64, &str) -> Result<Option<LabelItem>>,
    ) -> Result<usize> {
        let mut got = 0usize;
        while got < max {
            let Some(line) = self.reader.next() else {
                break;
            };
            self.lineno += 1;
            let line = line.map_err(|e| io_err(&self.path, e))?;
            if let Some(pair) = parse(&self.path, self.lineno, &line)? {
                buf.push(pair);
                got += 1;
            }
        }
        self.yielded += got as u64;
        Ok(got)
    }

    /// Un-consumes the `n` most recent pairs by reopening the file and
    /// re-parsing (and discarding) everything before the target position.
    /// Exactness depends on the file not changing between passes — the
    /// batch/stream equivalence contract already assumes that.
    fn rewind_with(
        &mut self,
        n: u64,
        parse: impl Fn(&Path, u64, &str) -> Result<Option<LabelItem>>,
    ) -> Result<bool> {
        let target = self.yielded.checked_sub(n).ok_or_else(|| Error::Source {
            message: format!(
                "{}: rewind({n}) exceeds the {} pairs already yielded",
                self.path.display(),
                self.yielded
            ),
        })?;
        *self = PairFile::open(&self.path)?;
        while self.yielded < target {
            let Some(line) = self.reader.next() else {
                return Err(Error::Source {
                    message: format!("{}: file shrank during rewind", self.path.display()),
                });
            };
            self.lineno += 1;
            let line = line.map_err(|e| io_err(&self.path, e))?;
            if parse(&self.path, self.lineno, &line)?.is_some() {
                self.yielded += 1;
            }
        }
        Ok(true)
    }
}

/// Parses one `label,item` CSV line (line 1 may be a header).
fn parse_csv_line(path: &Path, lineno: u64, line: &str) -> Result<Option<LabelItem>> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    if lineno == 1 && line.to_ascii_lowercase().starts_with("label") {
        return Ok(None); // header
    }
    let bad = |what: &str| line_err(path, lineno, what);
    let mut fields = line.split(',');
    let (a, b) = (fields.next(), fields.next());
    if fields.next().is_some() {
        return Err(bad("expected `label,item`"));
    }
    let parse = |s: Option<&str>, what: &str| -> Result<u32> {
        s.map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| bad(&format!("missing {what}")))?
            .parse()
            .map_err(|_| bad(&format!("{what} is not a non-negative integer")))
    };
    Ok(Some(LabelItem::new(parse(a, "label")?, parse(b, "item")?)))
}

/// Parses one `{"label": c, "item": i}` NDJSON line (fields in any order).
fn parse_ndjson_line(path: &Path, lineno: u64, line: &str) -> Result<Option<LabelItem>> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let bad = |what: &str| line_err(path, lineno, what);
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| bad("expected a {\"label\": …, \"item\": …} object"))?;
    let (mut label, mut item) = (None::<u32>, None::<u32>);
    for field in body.split(',') {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| bad("expected `\"key\": value` fields"))?;
        let key = key.trim().trim_matches('"');
        let value: u32 = value
            .trim()
            .parse()
            .map_err(|_| bad(&format!("field `{key}` is not a non-negative integer")))?;
        match key {
            "label" => label = Some(value),
            "item" => item = Some(value),
            other => return Err(bad(&format!("unknown field `{other}`"))),
        }
    }
    match (label, item) {
        (Some(label), Some(item)) => Ok(Some(LabelItem::new(label, item))),
        _ => Err(bad("object needs both `label` and `item`")),
    }
}

/// A `label,item` CSV file as a stream source. Lines are pulled through a
/// buffered reader; memory is one line plus the reader's buffer. This is
/// the **only** CSV pair grammar in the workspace — the CLI's batch
/// loader drains this same source, so batch and streaming runs can never
/// parse a file differently.
#[derive(Debug)]
pub struct CsvPairSource {
    file: PairFile,
}

impl CsvPairSource {
    /// Opens `path`. An optional `label,item` header is skipped on read.
    pub fn open(path: &Path) -> Result<Self> {
        Ok(CsvPairSource {
            file: PairFile::open(path)?,
        })
    }
}

impl ReportSource for CsvPairSource {
    type Item = LabelItem;

    fn fill(&mut self, buf: &mut Vec<LabelItem>, max: usize) -> Result<usize> {
        self.file.fill_with(buf, max, parse_csv_line)
    }

    fn rewind(&mut self, n: u64) -> Result<bool> {
        self.file.rewind_with(n, parse_csv_line)
    }
}

/// A newline-delimited JSON file of `{"label": c, "item": i}` objects as a
/// stream source. The parser is deliberately minimal (two integer fields,
/// any order); anything else fails with the offending line number.
#[derive(Debug)]
pub struct NdjsonPairSource {
    file: PairFile,
}

impl NdjsonPairSource {
    /// Opens `path`.
    pub fn open(path: &Path) -> Result<Self> {
        Ok(NdjsonPairSource {
            file: PairFile::open(path)?,
        })
    }
}

impl ReportSource for NdjsonPairSource {
    type Item = LabelItem;

    fn fill(&mut self, buf: &mut Vec<LabelItem>, max: usize) -> Result<usize> {
        self.file.fill_with(buf, max, parse_ndjson_line)
    }

    fn rewind(&mut self, n: u64) -> Result<bool> {
        self.file.rewind_with(n, parse_ndjson_line)
    }
}

/// Configuration for [`SyntheticPairSource`].
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSourceConfig {
    /// Class-domain size.
    pub classes: u32,
    /// Item-domain size.
    pub items: u32,
    /// Total users the source will yield.
    pub users: u64,
    /// Zipf exponent of the per-class item ranking (SYN3 uses 1.5).
    pub zipf_s: f64,
    /// Generator seed.
    pub seed: u64,
}

/// A seeded on-the-fly generator of label-item pairs: labels rotate
/// round-robin, items follow a per-class Zipf ranking (class `c`'s rank-`r`
/// item is `(c·37 + r) mod d`, mirroring the SYN3 construction). Knows its
/// length, so it also feeds round-splitting consumers.
#[derive(Debug, Clone)]
pub struct SyntheticPairSource {
    config: SyntheticSourceConfig,
    zipf: Zipf,
    rng: StdRng,
    emitted: u64,
}

impl SyntheticPairSource {
    /// Creates the generator.
    pub fn new(config: SyntheticSourceConfig) -> Self {
        SyntheticPairSource {
            config,
            zipf: Zipf::new(config.zipf_s, config.items),
            // mcim-lint: allow(rng-discipline, generator stream seeded from the source's explicit config seed; not a privatization stage)
            rng: StdRng::seed_from_u64(config.seed),
            emitted: 0,
        }
    }

    /// Draws the next pair — the single place the generator's RNG stream
    /// advances, so replaying from the seed reproduces it exactly.
    fn next_pair(&mut self) -> LabelItem {
        let label = self.rng.random_range(0..self.config.classes);
        let rank = self.zipf.sample(&mut self.rng);
        let item = (label.wrapping_mul(37).wrapping_add(rank)) % self.config.items;
        self.emitted += 1;
        LabelItem::new(label, item)
    }
}

impl ReportSource for SyntheticPairSource {
    type Item = LabelItem;

    fn fill(&mut self, buf: &mut Vec<LabelItem>, max: usize) -> Result<usize> {
        let take = (self.config.users - self.emitted).min(max as u64) as usize;
        for _ in 0..take {
            let pair = self.next_pair();
            buf.push(pair);
        }
        Ok(take)
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.config.users - self.emitted)
    }

    fn rewind(&mut self, n: u64) -> Result<bool> {
        let target = self.emitted.checked_sub(n).ok_or_else(|| Error::Source {
            message: format!(
                "rewind({n}) exceeds the {} pairs already generated",
                self.emitted
            ),
        })?;
        // The RNG stream has no random access; replay it from the seed up
        // to the target position (cheap and exact — `next_pair` is the
        // only consumer of the stream).
        // mcim-lint: allow(rng-discipline, replaying the generator stream from its explicit config seed; not a privatization stage)
        self.rng = StdRng::seed_from_u64(self.config.seed);
        self.emitted = 0;
        for _ in 0..target {
            let _ = self.next_pair();
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mcim-dataset-sources");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn drain<S: ReportSource<Item = LabelItem>>(mut s: S) -> Result<Vec<LabelItem>> {
        let mut out = Vec::new();
        while s.fill(&mut out, 3)? > 0 {}
        Ok(out)
    }

    #[test]
    fn ndjson_round_trip() {
        let path = tmp("ok.ndjson");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "{{\"label\": 0, \"item\": 5}}").unwrap();
        writeln!(f).unwrap(); // blank lines are skipped
        writeln!(f, "  {{ \"item\": 2 , \"label\" : 3 }}  ").unwrap();
        drop(f);
        let pairs = drain(NdjsonPairSource::open(&path).unwrap()).unwrap();
        assert_eq!(pairs, vec![LabelItem::new(0, 5), LabelItem::new(3, 2)]);
    }

    #[test]
    fn ndjson_malformed_line_names_position() {
        let path = tmp("bad.ndjson");
        std::fs::write(
            &path,
            "{\"label\": 0, \"item\": 1}\n{\"label\": 0, \"item\": -3}\n",
        )
        .unwrap();
        let err = drain(NdjsonPairSource::open(&path).unwrap()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "error should name the line: {msg}");

        std::fs::write(&path, "label,item\n").unwrap();
        assert!(drain(NdjsonPairSource::open(&path).unwrap()).is_err());
        std::fs::write(&path, "{\"label\": 0}\n").unwrap();
        assert!(drain(NdjsonPairSource::open(&path).unwrap()).is_err());
        std::fs::write(&path, "{\"label\": 0, \"item\": 1, \"x\": 2}\n").unwrap();
        assert!(drain(NdjsonPairSource::open(&path).unwrap()).is_err());
        assert!(NdjsonPairSource::open(&tmp("missing.ndjson")).is_err());
    }

    #[test]
    fn csv_round_trip_with_header() {
        let path = tmp("ok.csv");
        std::fs::write(&path, "label,item\n1,2\n0, 7\n").unwrap();
        let pairs = drain(CsvPairSource::open(&path).unwrap()).unwrap();
        assert_eq!(pairs, vec![LabelItem::new(1, 2), LabelItem::new(0, 7)]);
    }

    #[test]
    fn csv_malformed_line_names_position() {
        let path = tmp("bad.csv");
        std::fs::write(&path, "0,1\n1,2,3\n").unwrap();
        let err = drain(CsvPairSource::open(&path).unwrap()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn synthetic_source_is_seed_deterministic_and_sized() {
        let config = SyntheticSourceConfig {
            classes: 4,
            items: 64,
            users: 1000,
            zipf_s: 1.5,
            seed: 9,
        };
        let a = drain(SyntheticPairSource::new(config)).unwrap();
        let b = drain(SyntheticPairSource::new(config)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        let source = SyntheticPairSource::new(config);
        assert_eq!(source.size_hint(), Some(1000));
        for p in &a {
            assert!(p.label < 4 && p.item < 64);
        }
        // The Zipf head must dominate: rank-0 items are the per-class modes.
        let head = a.iter().filter(|p| p.item == (p.label * 37) % 64).count();
        assert!(head > a.len() / 4, "zipf head too light: {head}");
    }

    /// Shared shape of every rewind test: consume a prefix, rewind part of
    /// it, and require the replayed stream to match the first pass exactly.
    fn assert_rewind_replays<S: ReportSource<Item = LabelItem>>(mut source: S, total: usize) {
        let mut first = Vec::new();
        let consumed = total * 2 / 3;
        while first.len() < consumed {
            let want = consumed - first.len();
            let got = source.fill(&mut first, want).unwrap();
            assert!(got > 0, "source ended early");
        }
        let back = (consumed / 2) as u64;
        assert!(source.rewind(back).unwrap(), "source must support rewind");
        let mut replay = Vec::new();
        while source.fill(&mut replay, 7).unwrap() > 0 {}
        assert_eq!(replay.len(), total - consumed + back as usize);
        assert_eq!(
            replay[..back as usize],
            first[consumed - back as usize..],
            "replayed items must be byte-identical"
        );
        assert!(source.rewind(u64::MAX).is_err(), "over-rewind must error");
    }

    #[test]
    fn synthetic_rewind_replays_identically() {
        let config = SyntheticSourceConfig {
            classes: 4,
            items: 64,
            users: 900,
            zipf_s: 1.5,
            seed: 9,
        };
        assert_rewind_replays(SyntheticPairSource::new(config), 900);
    }

    #[test]
    fn csv_rewind_replays_identically() {
        let path = tmp("rewind.csv");
        let mut body = String::from("label,item\n");
        for i in 0..120u32 {
            body.push_str(&format!("{},{}\n\n", i % 5, i % 11)); // blanks interleaved
        }
        std::fs::write(&path, body).unwrap();
        assert_rewind_replays(CsvPairSource::open(&path).unwrap(), 120);
    }

    #[test]
    fn ndjson_rewind_replays_identically() {
        let path = tmp("rewind.ndjson");
        let mut body = String::new();
        for i in 0..90u32 {
            body.push_str(&format!("{{\"label\": {}, \"item\": {}}}\n", i % 3, i % 13));
        }
        std::fs::write(&path, body).unwrap();
        assert_rewind_replays(NdjsonPairSource::open(&path).unwrap(), 90);
    }
}
