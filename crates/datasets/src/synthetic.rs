//! The paper's synthetic datasets SYN1–SYN4 (§VII-A).
//!
//! * **SYN1 / SYN2** — 4 classes × 4 items with exactly controlled pair
//!   counts, for the empirical variance analysis of Fig. 5.
//! * **SYN3 / SYN4** — large-domain top-k workloads with 10–50 classes,
//!   normal class sizes and exponential within-class item ranks; SYN3
//!   plants globally frequent items (≈8 overlapping titles among any two
//!   classes' top-20), SYN4 does not.
//!
//! All generators take an explicit `scale` so benches can run a laptop-size
//! configuration by default and the paper's full size on demand (see
//! EXPERIMENTS.md).

use mcim_core::{Domains, LabelItem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::distributions::{normal, ExpRank};

/// The paper's pair-count levels for SYN1: 10³..10⁶ (scaled).
pub const SYN1_LEVELS: [f64; 4] = [1e3, 1e4, 1e5, 1e6];

/// The paper's class sizes for SYN2 (scaled).
pub const SYN2_CLASS_SIZES: [f64; 4] = [1.3e4, 2.11e5, 1.21e6, 3.01e6];

/// SYN1: 4 classes × 4 items; class `c` assigns item `i` the count
/// `SYN1_LEVELS[(i + c) % 4]·scale` (a Latin square), so every class total
/// and every global item total equals `1.111e6·scale` while the pair counts
/// span three orders of magnitude — exactly the "fix f(I) = n, vary
/// f(C, I)" setup of Fig. 5(a).
pub fn syn1(scale: f64, seed: u64) -> Dataset {
    assert!(scale > 0.0, "scale must be positive");
    let domains = Domains::of(4, 4);
    let mut pairs = Vec::new();
    for class in 0..4u32 {
        for item in 0..4u32 {
            let count = (SYN1_LEVELS[((item + class) % 4) as usize] * scale).round() as usize;
            pairs.extend(std::iter::repeat_n(LabelItem::new(class, item), count));
        }
    }
    let mut ds = Dataset::pre_validated("SYN1", domains, pairs);
    // mcim-lint: allow(rng-discipline, generator stream seeded from the caller's explicit seed parameter; not a privatization stage)
    ds.shuffle(&mut StdRng::seed_from_u64(seed));
    ds
}

/// SYN2: 4 classes × 4 items; every class holds the target item 0 with the
/// same count `10⁴·scale`, while class sizes vary over
/// [`SYN2_CLASS_SIZES`]·scale (the remainder spread over items 1–3) — the
/// "fix f(C, I), vary n" setup of Fig. 5(b).
pub fn syn2(scale: f64, seed: u64) -> Dataset {
    assert!(scale > 0.0, "scale must be positive");
    let domains = Domains::of(4, 4);
    let target = (1e4 * scale).round() as usize;
    let mut pairs = Vec::new();
    for class in 0..4u32 {
        pairs.extend(std::iter::repeat_n(LabelItem::new(class, 0), target));
        let rest = (SYN2_CLASS_SIZES[class as usize] * scale).round() as usize - target;
        for i in 0..rest {
            pairs.push(LabelItem::new(class, 1 + (i % 3) as u32));
        }
    }
    let mut ds = Dataset::pre_validated("SYN2", domains, pairs);
    // mcim-lint: allow(rng-discipline, generator stream seeded from the caller's explicit seed parameter; not a privatization stage)
    ds.shuffle(&mut StdRng::seed_from_u64(seed));
    ds
}

/// Configuration for SYN3/SYN4.
#[derive(Debug, Clone, Copy)]
pub struct SynLargeConfig {
    /// Number of classes (the paper sweeps 10–50).
    pub classes: u32,
    /// Item domain size (paper: 20,000).
    pub items: u32,
    /// Total users (paper: 5,000,000).
    pub users: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynLargeConfig {
    /// Laptop-scale default; the paper-scale values are 20k items / 5M users.
    fn default() -> Self {
        SynLargeConfig {
            classes: 10,
            items: 2048,
            users: 200_000,
            seed: 0x5E3D,
        }
    }
}

/// Size of the globally-frequent pool planted by SYN3.
const GLOBAL_POOL: usize = 12;
/// How many pool items each class pulls into its head ranks.
const POOL_PER_CLASS: usize = 10;

/// SYN3: with globally frequent items. Each class's rank→item mapping puts
/// 10 of a shared 12-item pool into its top-20 ranks (expected pairwise
/// top-20 overlap = 10·10/12 ≈ 8.3, the paper's "average of eight
/// overlapping items"), then fills the remainder with a class-specific
/// permutation. Class sizes are normal; within-class ranks are exponential
/// with per-class scale drawn from [0.01, 0.1].
pub fn syn3(config: SynLargeConfig) -> Dataset {
    generate_large("SYN3", config, true)
}

/// SYN4: same construction but **without** the shared pool — every class
/// draws its items from its own independent permutation, so classwise top
/// items almost never coincide.
pub fn syn4(config: SynLargeConfig) -> Dataset {
    generate_large("SYN4", config, false)
}

fn generate_large(name: &str, config: SynLargeConfig, global_pool: bool) -> Dataset {
    let SynLargeConfig {
        classes,
        items,
        users,
        seed,
    } = config;
    assert!(
        classes >= 1 && items as usize > GLOBAL_POOL * 2,
        "domain too small"
    );
    let domains = Domains::of(classes, items);
    // mcim-lint: allow(rng-discipline, generator stream seeded from the caller's explicit seed parameter; not a privatization stage)
    let mut rng = StdRng::seed_from_u64(seed);

    // Class sizes ~ Normal(N/c, N/(4c)), clipped to ≥ 1% of the mean, then
    // renormalized to sum to N ("the data size of each class satisfies the
    // normal distribution").
    let mean = users as f64 / classes as f64;
    let mut sizes: Vec<f64> = (0..classes)
        .map(|_| normal(mean, mean / 4.0, &mut rng).max(mean * 0.01))
        .collect();
    let total: f64 = sizes.iter().sum();
    for s in &mut sizes {
        *s = *s / total * users as f64;
    }

    // The shared pool (SYN3 only): GLOBAL_POOL random item ids — ids must
    // carry no popularity signal, or bit-prefix miners get an unrealistic
    // subtree-aggregation advantage.
    let mut id_perm: Vec<u32> = (0..items).collect();
    for i in (1..id_perm.len()).rev() {
        let j = rng.random_range(0..=i);
        id_perm.swap(i, j);
    }
    let pool: Vec<u32> = id_perm[..GLOBAL_POOL].to_vec();
    let non_pool: Vec<u32> = id_perm[GLOBAL_POOL..].to_vec();

    let mut pairs = Vec::with_capacity(users);
    for class in 0..classes {
        // Per-class rank→item mapping.
        let mut mapping: Vec<u32> = if global_pool {
            // Choose POOL_PER_CLASS pool items for the head ranks; the
            // unchosen pool items sink into the tail so the mapping stays a
            // complete permutation of the item domain.
            let mut shuffled_pool = pool.clone();
            for i in (1..shuffled_pool.len()).rev() {
                let j = rng.random_range(0..=i);
                shuffled_pool.swap(i, j);
            }
            let unchosen: Vec<u32> = shuffled_pool.split_off(POOL_PER_CLASS);
            let chosen = shuffled_pool;
            // A shuffled class-specific tail over the remaining ids.
            let mut tail: Vec<u32> = non_pool.clone();
            tail.extend(unchosen);
            for i in (1..tail.len()).rev() {
                let j = rng.random_range(0..=i);
                tail.swap(i, j);
            }
            // Interleave pool items among the first ~2·POOL_PER_CLASS ranks
            // so class-specific items also reach the head.
            let mut head: Vec<u32> = chosen;
            head.extend(tail.iter().take(POOL_PER_CLASS).copied());
            for i in (1..head.len()).rev() {
                let j = rng.random_range(0..=i);
                head.swap(i, j);
            }
            head.extend(tail.into_iter().skip(POOL_PER_CLASS));
            head
        } else {
            let mut all: Vec<u32> = (0..items).collect();
            for i in (1..all.len()).rev() {
                let j = rng.random_range(0..=i);
                all.swap(i, j);
            }
            all
        };
        mapping.truncate(items as usize);

        // Within-class rank distribution: exponential, scale ∈ [0.01, 0.1].
        let beta = rng.random_range(0.01..0.1);
        let dist = ExpRank::new(beta, items);
        let size = sizes[class as usize].round() as usize;
        for _ in 0..size {
            let rank = dist.sample(&mut rng);
            pairs.push(LabelItem::new(class, mapping[rank as usize]));
        }
    }
    let mut ds = Dataset::pre_validated(name, domains, pairs);
    ds.shuffle(&mut rng);
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn syn1_latin_square_structure() {
        let ds = syn1(0.01, 1);
        let t = ds.ground_truth();
        // Every class total and item total = 1.111e6 · 0.01 = 11,110.
        for c in 0..4 {
            assert!((t.class_total(c) - 11_110.0).abs() < 2.0, "class {c}");
        }
        for i in 0..4 {
            assert!((t.item_total(i) - 11_110.0).abs() < 2.0, "item {i}");
        }
        // Pair counts hit the four levels.
        let mut levels: Vec<f64> = (0..4).map(|i| t.get(0, i)).collect();
        levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(levels, vec![10.0, 100.0, 1_000.0, 10_000.0]);
    }

    #[test]
    fn syn2_fixed_pair_varying_class() {
        let ds = syn2(0.01, 2);
        let t = ds.ground_truth();
        for c in 0..4 {
            assert_eq!(t.get(c, 0), 100.0, "f(C, 0) fixed at 10⁴·scale");
        }
        let sizes = ds.class_sizes();
        assert_eq!(sizes[0], 130);
        assert_eq!(sizes[1], 2_110);
        assert_eq!(sizes[2], 12_100);
        assert_eq!(sizes[3], 30_100);
    }

    #[test]
    fn syn3_has_global_overlap_syn4_does_not() {
        let config = SynLargeConfig {
            classes: 6,
            items: 512,
            users: 60_000,
            seed: 3,
        };
        let overlap = |ds: &Dataset| {
            let tops = ds.true_top_k(20);
            let mut total = 0usize;
            let mut pairs = 0usize;
            for a in 0..tops.len() {
                for b in a + 1..tops.len() {
                    let sa: HashSet<u32> = tops[a].iter().copied().collect();
                    total += tops[b].iter().filter(|i| sa.contains(i)).count();
                    pairs += 1;
                }
            }
            total as f64 / pairs as f64
        };
        let o3 = overlap(&syn3(config));
        let o4 = overlap(&syn4(config));
        assert!(o3 > 5.0, "SYN3 mean top-20 overlap {o3} should be ≈8");
        assert!(o4 < 2.0, "SYN4 mean top-20 overlap {o4} should be ≈0");
    }

    #[test]
    fn syn3_class_sizes_sum_to_n() {
        let config = SynLargeConfig {
            classes: 10,
            items: 256,
            users: 50_000,
            seed: 4,
        };
        let ds = syn3(config);
        let total: u64 = ds.class_sizes().iter().sum();
        assert!((total as i64 - 50_000).unsigned_abs() < 20, "total {total}");
        assert_eq!(ds.domains.classes(), 10);
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = syn1(0.001, 7);
        let b = syn1(0.001, 7);
        assert_eq!(a.pairs, b.pairs);
        let c = syn1(0.001, 8);
        assert_ne!(a.pairs, c.pairs);
    }

    #[test]
    fn within_class_distribution_is_skewed() {
        let ds = syn4(SynLargeConfig {
            classes: 2,
            items: 512,
            users: 40_000,
            seed: 5,
        });
        let t = ds.ground_truth();
        for c in 0..2 {
            let top = t.top_k(c, 1)[0];
            let n_c = t.class_total(c);
            assert!(
                t.get(c, top) > 0.008 * n_c,
                "head item should dominate: {} of {n_c}",
                t.get(c, top)
            );
        }
    }
}
