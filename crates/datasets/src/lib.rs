//! # mcim-datasets
//!
//! Dataset generators for the paper's evaluation (§VII-A): the exact
//! synthetic constructions SYN1–SYN4 and seeded simulations of the four
//! Kaggle datasets (Diabetes, Heart Disease, MyAnimeList, JD Contest) whose
//! originals cannot be downloaded in this environment — see DESIGN.md §2.4
//! for the substitution rationale and the statistics each simulation
//! preserves.
//!
//! ```
//! use mcim_datasets::{synthetic, SynLargeConfig};
//!
//! let ds = synthetic::syn3(SynLargeConfig { classes: 5, items: 256, users: 10_000, seed: 1 });
//! assert_eq!(ds.domains.classes(), 5);
//! assert_eq!(ds.len(), ds.pairs.len());
//! let top = ds.true_top_k(10);
//! assert_eq!(top.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
pub mod distributions;
pub mod realworld;
pub mod sources;
pub mod synthetic;

pub use dataset::{Dataset, GroupedDataset};
pub use realworld::{anime_like, diabetes_like, heart_like, jd_like, RealConfig};
pub use sources::{CsvPairSource, NdjsonPairSource, SyntheticPairSource, SyntheticSourceConfig};
pub use synthetic::{syn1, syn2, syn3, syn4, SynLargeConfig};
