//! The `Exec` equivalence matrix under RNG-contract v2: every in-process
//! mode of every `execute` entry point must be **bit-identical** to every
//! other mode for the same plan seed.
//!
//! | plan | machinery |
//! |---|---|
//! | `Exec::sequential().seed(s)` | sharded runtime pinned to 1 worker |
//! | `Exec::batch().seed(s).threads(t)` | sharded runtime, materialized input |
//! | `Exec::stream().seed(s).threads(t).chunk_size(c)` | sharded runtime, bounded chunks |
//! | `Exec::seeded(s)` (auto) | resolves to stream |
//!
//! Each sharded comparison runs at two `(threads, chunk_size)`
//! combinations, one of which splits shards mid-way; the distributed
//! worker matrix (`crates/dist/tests`, `crates/cli/tests`) extends the
//! same identity across process boundaries.

use multiclass_ldp::prelude::*;
use multiclass_ldp::topk::{Pem, PemConfig, PemEngine};

const SHARD: usize = parallel::SHARD_SIZE;

/// The acceptance combos: sequential-ish and parallel, with chunk sizes
/// on both sides of a shard boundary.
const COMBOS: [(usize, usize); 2] = [(1, SHARD - 1), (4, SHARD + 1)];

fn sample_pairs(domains: Domains, n: usize) -> Vec<LabelItem> {
    (0..n)
        .map(|u| {
            LabelItem::new(
                (u % domains.classes() as usize) as u32,
                ((u * 7919) % domains.items() as usize) as u32,
            )
        })
        .collect()
}

fn assert_tables_identical(a: &EstimationResultPair, b: &EstimationResultPair, what: &str) {
    let (a, b) = (&a.0, &b.0);
    assert_eq!(a.comm, b.comm, "{what}: comm diverged");
    let domains = a.table.domains();
    for label in 0..domains.classes() {
        for item in 0..domains.items() {
            assert!(
                a.table.get(label, item) == b.table.get(label, item),
                "{what}: diverged at ({label},{item})"
            );
        }
    }
}

/// Newtype so the helper signature stays readable.
struct EstimationResultPair(multiclass_ldp::core::EstimationResult);

#[test]
fn framework_execute_is_mode_invariant() {
    let domains = Domains::new(3, 32).unwrap();
    let data = sample_pairs(domains, SHARD + 700);
    let eps = Eps::new(2.0).unwrap();
    let seed = 0xE0_2024;
    for fw in Framework::fig6_set() {
        // Reference: the batch plan at one thread.
        let reference = fw
            .execute(
                eps,
                domains,
                &Exec::batch().seed(seed).threads(1),
                SliceSource::new(&data),
            )
            .unwrap();
        let reference = EstimationResultPair(reference);
        let exec_seq = fw
            .execute(
                eps,
                domains,
                &Exec::sequential().seed(seed),
                SliceSource::new(&data),
            )
            .unwrap();
        assert_tables_identical(
            &reference,
            &EstimationResultPair(exec_seq),
            &format!("{} sequential vs batch", fw.name()),
        );

        for (threads, chunk) in COMBOS {
            let exec_batch = fw
                .execute(
                    eps,
                    domains,
                    &Exec::batch().seed(seed).threads(threads),
                    SliceSource::new(&data),
                )
                .unwrap();
            let exec_stream = fw
                .execute(
                    eps,
                    domains,
                    &Exec::stream().seed(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&data),
                )
                .unwrap();
            let exec_auto = fw
                .execute(
                    eps,
                    domains,
                    &Exec::seeded(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&data),
                )
                .unwrap();
            let exec_seq_chunked = fw
                .execute(
                    eps,
                    domains,
                    &Exec::sequential().seed(seed).chunk_size(chunk),
                    SliceSource::new(&data),
                )
                .unwrap();
            let what = format!("{} t={threads} chunk={chunk}", fw.name());
            for (label, result) in [
                ("batch", exec_batch),
                ("stream", exec_stream),
                ("auto", exec_auto),
                ("sequential+chunk", exec_seq_chunked),
            ] {
                assert_tables_identical(
                    &reference,
                    &EstimationResultPair(result),
                    &format!("{what} [{label} vs reference]"),
                );
            }
        }
    }
}

#[test]
fn pem_engine_execute_round_is_mode_invariant() {
    let d = 128u32;
    let eps = Eps::new(3.0).unwrap();
    let seed = 0xE0_4111;
    let items: Vec<Option<u32>> = (0..SHARD + 600)
        .map(|u| {
            if u % 6 == 0 {
                None
            } else {
                Some(((u * 13) % 40) as u32)
            }
        })
        .collect();
    for validity in [false, true] {
        let config = if validity {
            PemConfig::new(4).with_validity()
        } else {
            PemConfig::new(4)
        };
        let fresh = || PemEngine::new(d, config).unwrap();

        // Reference: one sequential round.
        let mut reference = fresh();
        let reference_comm = reference
            .execute_round(
                eps,
                &Exec::sequential().seed(seed),
                SliceSource::new(&items),
            )
            .unwrap();

        for (threads, chunk) in COMBOS {
            let what = format!("validity={validity} t={threads} chunk={chunk}");
            let (mut exec_b, mut exec_s, mut exec_a) = (fresh(), fresh(), fresh());
            let comm_b = exec_b
                .execute_round(
                    eps,
                    &Exec::batch().seed(seed).threads(threads),
                    SliceSource::new(&items),
                )
                .unwrap();
            let comm_s = exec_s
                .execute_round(
                    eps,
                    &Exec::stream().seed(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&items),
                )
                .unwrap();
            let comm_a = exec_a
                .execute_round(
                    eps,
                    &Exec::seeded(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&items),
                )
                .unwrap();
            assert_eq!(reference_comm, comm_b, "{what} batch comm");
            assert_eq!(reference_comm, comm_s, "{what} stream comm");
            assert_eq!(reference_comm, comm_a, "{what} auto comm");
            assert_eq!(reference.candidates(), exec_b.candidates(), "{what}");
            assert_eq!(reference.candidates(), exec_s.candidates(), "{what}");
            assert_eq!(reference.candidates(), exec_a.candidates(), "{what}");
            assert_eq!(reference.prefix_len(), exec_b.prefix_len(), "{what}");
        }
    }
}

#[test]
fn pem_execute_is_mode_invariant() {
    let d = 128u32;
    let eps = Eps::new(4.0).unwrap();
    let seed = 0xE0_5222;
    let items: Vec<Option<u32>> = (0..SHARD + 2200)
        .map(|u| {
            if u % 5 == 0 {
                None
            } else {
                Some(((u * 31) % 40) as u32)
            }
        })
        .collect();
    for config in [PemConfig::new(4), PemConfig::new(4).with_validity()] {
        let pem = Pem::new(d, config).unwrap();

        let reference = pem
            .execute(
                eps,
                &Exec::sequential().seed(seed),
                SliceSource::new(&items),
            )
            .unwrap();

        for (threads, chunk) in COMBOS {
            let what = format!("validity={} t={threads} chunk={chunk}", config.validity);
            let exec_batch = pem
                .execute(
                    eps,
                    &Exec::batch().seed(seed).threads(threads),
                    SliceSource::new(&items),
                )
                .unwrap();
            let exec_stream = pem
                .execute(
                    eps,
                    &Exec::stream().seed(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&items),
                )
                .unwrap();
            let exec_auto = pem
                .execute(
                    eps,
                    &Exec::seeded(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&items),
                )
                .unwrap();
            for (label, out) in [
                ("batch", &exec_batch),
                ("stream", &exec_stream),
                ("auto", &exec_auto),
            ] {
                assert_eq!(reference.top, out.top, "{what} [{label}]");
                assert_eq!(reference.comm, out.comm, "{what} [{label}]");
            }
        }
    }
}

#[test]
fn topk_execute_is_mode_invariant() {
    let domains = Domains::new(3, 64).unwrap();
    let data = sample_pairs(domains, 14_000);
    let config = TopKConfig::new(3, Eps::new(6.0).unwrap());
    let seed = 0xE0_6333;
    for method in [
        TopKMethod::Hec,
        TopKMethod::PtjShuffled { validity: true },
        TopKMethod::PtsPem {
            validity: false,
            global: true,
        },
        TopKMethod::PtsShuffled {
            validity: true,
            global: true,
            correlated: true,
        },
    ] {
        let reference = execute(
            method,
            config,
            domains,
            &Exec::sequential().seed(seed),
            SliceSource::new(&data),
        )
        .unwrap();

        for (threads, chunk) in COMBOS {
            let what = format!("{} t={threads} chunk={chunk}", method.name());
            let exec_batch = execute(
                method,
                config,
                domains,
                &Exec::batch().seed(seed).threads(threads),
                SliceSource::new(&data),
            )
            .unwrap();
            let exec_stream = execute(
                method,
                config,
                domains,
                &Exec::stream().seed(seed).threads(threads).chunk_size(chunk),
                SliceSource::new(&data),
            )
            .unwrap();
            let exec_auto = execute(
                method,
                config,
                domains,
                &Exec::seeded(seed).threads(threads).chunk_size(chunk),
                SliceSource::new(&data),
            )
            .unwrap();
            for (label, out) in [
                ("batch", &exec_batch),
                ("stream", &exec_stream),
                ("auto", &exec_auto),
            ] {
                assert_eq!(reference.per_class, out.per_class, "{what} [{label}]");
                assert_eq!(reference.comm, out.comm, "{what} [{label}]");
                assert!(
                    (reference.broadcast_bits_per_user - out.broadcast_bits_per_user).abs() == 0.0,
                    "{what} [{label}]"
                );
            }
        }
    }
}

/// Under RNG-contract v2 sequential mode IS the sharded runtime pinned to
/// one worker — the modes share one noise stream, so a sequential run and
/// a multi-threaded batch run of the same seed must agree bit-for-bit
/// (pre-v2, sequential kept a separate caller-RNG stream and this test
/// asserted the opposite).
#[test]
fn sequential_and_sharded_modes_share_one_stream() {
    let domains = Domains::new(3, 32).unwrap();
    let data = sample_pairs(domains, SHARD + 700);
    let eps = Eps::new(2.0).unwrap();
    let seq = Framework::PtsCp { label_frac: 0.5 }
        .execute(
            eps,
            domains,
            &Exec::sequential().seed(1),
            SliceSource::new(&data),
        )
        .unwrap();
    let batch = Framework::PtsCp { label_frac: 0.5 }
        .execute(
            eps,
            domains,
            &Exec::batch().seed(1).threads(2),
            SliceSource::new(&data),
        )
        .unwrap();
    assert_eq!(seq.comm, batch.comm, "comm diverged");
    for l in 0..domains.classes() {
        for i in 0..domains.items() {
            assert!(
                seq.table.get(l, i) == batch.table.get(l, i),
                "sequential and batch diverged at ({l},{i})"
            );
        }
    }
}
