//! The `Exec` equivalence matrix — the shim-equivalence test and the only
//! internal caller allowed to touch the deprecated triplet methods.
//!
//! Every mode of every `execute` entry point must be **bit-identical** to
//! the legacy entry point it replaces:
//!
//! | legacy entry point | `Exec` plan |
//! |---|---|
//! | `Framework::run(.., &mut StdRng::seed_from_u64(s))` | `Exec::sequential().seed(s)` |
//! | `Framework::run_batch(.., s, t)` | `Exec::batch().seed(s).threads(t)` |
//! | `Framework::run_stream(.., s, cfg)` | `Exec::stream().seed(s).threads(t).chunk_size(c)` |
//! | `Pem::mine` / `mine_batch` / `mine_stream` | same three plans |
//! | `mcim_topk::mine` / `mine_batch` / `mine_stream` | same three plans |
//!
//! (plus the `PemEngine` round triplet underneath the `Pem` pipeline), and
//! `Auto` must equal `Batch`/`Stream`. Each sharded comparison runs at
//! two `(threads, chunk_size)` combinations, one of which splits shards
//! mid-way.

#![allow(deprecated)]

use multiclass_ldp::prelude::*;
use multiclass_ldp::topk::{Pem, PemConfig, PemEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD: usize = parallel::SHARD_SIZE;

/// The acceptance combos: sequential-ish and parallel, with chunk sizes
/// on both sides of a shard boundary.
const COMBOS: [(usize, usize); 2] = [(1, SHARD - 1), (4, SHARD + 1)];

fn sample_pairs(domains: Domains, n: usize) -> Vec<LabelItem> {
    (0..n)
        .map(|u| {
            LabelItem::new(
                (u % domains.classes() as usize) as u32,
                ((u * 7919) % domains.items() as usize) as u32,
            )
        })
        .collect()
}

fn assert_tables_identical(a: &EstimationResultPair, b: &EstimationResultPair, what: &str) {
    let (a, b) = (&a.0, &b.0);
    assert_eq!(a.comm, b.comm, "{what}: comm diverged");
    let domains = a.table.domains();
    for label in 0..domains.classes() {
        for item in 0..domains.items() {
            assert!(
                a.table.get(label, item) == b.table.get(label, item),
                "{what}: diverged at ({label},{item})"
            );
        }
    }
}

/// Newtype so the helper signature stays readable.
struct EstimationResultPair(multiclass_ldp::core::EstimationResult);

#[test]
fn framework_execute_matches_all_three_legacy_entry_points() {
    let domains = Domains::new(3, 32).unwrap();
    let data = sample_pairs(domains, SHARD + 700);
    let eps = Eps::new(2.0).unwrap();
    let seed = 0xE0_2024;
    for fw in Framework::fig6_set() {
        // Sequential: legacy `run` with a fresh seeded StdRng.
        let legacy_seq = fw
            .run(eps, domains, &data, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let exec_seq = fw
            .execute(
                eps,
                domains,
                &Exec::sequential().seed(seed),
                SliceSource::new(&data),
            )
            .unwrap();
        assert_tables_identical(
            &EstimationResultPair(legacy_seq),
            &EstimationResultPair(exec_seq),
            &format!("{} sequential", fw.name()),
        );

        for (threads, chunk) in COMBOS {
            let legacy_batch = fw.run_batch(eps, domains, &data, seed, threads).unwrap();
            let legacy_stream = fw
                .run_stream(
                    eps,
                    domains,
                    &mut SliceSource::new(&data),
                    seed,
                    StreamConfig::new(threads).with_chunk_items(chunk),
                )
                .unwrap();
            let exec_batch = fw
                .execute(
                    eps,
                    domains,
                    &Exec::batch().seed(seed).threads(threads),
                    SliceSource::new(&data),
                )
                .unwrap();
            let exec_stream = fw
                .execute(
                    eps,
                    domains,
                    &Exec::stream().seed(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&data),
                )
                .unwrap();
            let exec_auto = fw
                .execute(
                    eps,
                    domains,
                    &Exec::seeded(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&data),
                )
                .unwrap();
            let what = format!("{} t={threads} chunk={chunk}", fw.name());
            let legacy_batch = EstimationResultPair(legacy_batch);
            for (label, result) in [
                ("legacy stream", legacy_stream),
                ("exec batch", exec_batch),
                ("exec stream", exec_stream),
                ("exec auto", exec_auto),
            ] {
                assert_tables_identical(
                    &legacy_batch,
                    &EstimationResultPair(result),
                    &format!("{what} [{label} vs legacy batch]"),
                );
            }
        }
    }
}

#[test]
fn pem_engine_execute_round_matches_legacy_round_triplet() {
    let d = 128u32;
    let eps = Eps::new(3.0).unwrap();
    let seed = 0xE0_4111;
    let items: Vec<Option<u32>> = (0..SHARD + 600)
        .map(|u| {
            if u % 6 == 0 {
                None
            } else {
                Some(((u * 13) % 40) as u32)
            }
        })
        .collect();
    for validity in [false, true] {
        let config = if validity {
            PemConfig::new(4).with_validity()
        } else {
            PemConfig::new(4)
        };
        let fresh = || PemEngine::new(d, config).unwrap();

        // Sequential round.
        let (mut legacy, mut exec) = (fresh(), fresh());
        let legacy_comm = legacy
            .run_round(eps, items.iter().copied(), &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let exec_comm = exec
            .execute_round(
                eps,
                &Exec::sequential().seed(seed),
                SliceSource::new(&items),
            )
            .unwrap();
        assert_eq!(legacy_comm, exec_comm, "validity={validity} seq comm");
        assert_eq!(
            legacy.candidates(),
            exec.candidates(),
            "validity={validity} seq candidates"
        );

        for (threads, chunk) in COMBOS {
            let what = format!("validity={validity} t={threads} chunk={chunk}");
            let (mut legacy_b, mut legacy_s, mut exec_b, mut exec_s) =
                (fresh(), fresh(), fresh(), fresh());
            let comm_b = legacy_b
                .run_round_batch(eps, &items, seed, threads)
                .unwrap();
            let comm_s = legacy_s
                .run_round_stream(
                    eps,
                    &mut SliceSource::new(&items),
                    seed,
                    StreamConfig::new(threads).with_chunk_items(chunk),
                )
                .unwrap();
            let comm_eb = exec_b
                .execute_round(
                    eps,
                    &Exec::batch().seed(seed).threads(threads),
                    SliceSource::new(&items),
                )
                .unwrap();
            let comm_es = exec_s
                .execute_round(
                    eps,
                    &Exec::stream().seed(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&items),
                )
                .unwrap();
            assert_eq!(comm_b, comm_s, "{what} legacy batch vs stream comm");
            assert_eq!(comm_b, comm_eb, "{what} exec batch comm");
            assert_eq!(comm_b, comm_es, "{what} exec stream comm");
            assert_eq!(legacy_b.candidates(), legacy_s.candidates(), "{what}");
            assert_eq!(legacy_b.candidates(), exec_b.candidates(), "{what}");
            assert_eq!(legacy_b.candidates(), exec_s.candidates(), "{what}");
            assert_eq!(legacy_b.prefix_len(), exec_b.prefix_len(), "{what}");
        }
    }
}

#[test]
fn pem_execute_matches_legacy_mine_triplet() {
    let d = 128u32;
    let eps = Eps::new(4.0).unwrap();
    let seed = 0xE0_5222;
    let items: Vec<Option<u32>> = (0..SHARD + 2200)
        .map(|u| {
            if u % 5 == 0 {
                None
            } else {
                Some(((u * 31) % 40) as u32)
            }
        })
        .collect();
    for config in [PemConfig::new(4), PemConfig::new(4).with_validity()] {
        let pem = Pem::new(d, config).unwrap();

        let legacy_seq = pem
            .mine(eps, &items, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let exec_seq = pem
            .execute(
                eps,
                &Exec::sequential().seed(seed),
                SliceSource::new(&items),
            )
            .unwrap();
        assert_eq!(legacy_seq.top, exec_seq.top, "validity={}", config.validity);
        assert_eq!(legacy_seq.comm, exec_seq.comm);

        for (threads, chunk) in COMBOS {
            let what = format!("validity={} t={threads} chunk={chunk}", config.validity);
            let legacy_batch = pem.mine_batch(eps, &items, seed, threads).unwrap();
            let legacy_stream = pem
                .mine_stream(
                    eps,
                    &mut SliceSource::new(&items),
                    seed,
                    StreamConfig::new(threads).with_chunk_items(chunk),
                )
                .unwrap();
            let exec_batch = pem
                .execute(
                    eps,
                    &Exec::batch().seed(seed).threads(threads),
                    SliceSource::new(&items),
                )
                .unwrap();
            let exec_stream = pem
                .execute(
                    eps,
                    &Exec::stream().seed(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&items),
                )
                .unwrap();
            let exec_auto = pem
                .execute(
                    eps,
                    &Exec::seeded(seed).threads(threads).chunk_size(chunk),
                    SliceSource::new(&items),
                )
                .unwrap();
            for (label, out) in [
                ("legacy stream", &legacy_stream),
                ("exec batch", &exec_batch),
                ("exec stream", &exec_stream),
                ("exec auto", &exec_auto),
            ] {
                assert_eq!(legacy_batch.top, out.top, "{what} [{label}]");
                assert_eq!(legacy_batch.comm, out.comm, "{what} [{label}]");
            }
        }
    }
}

#[test]
fn topk_execute_matches_legacy_mine_triplet() {
    let domains = Domains::new(3, 64).unwrap();
    let data = sample_pairs(domains, 14_000);
    let config = TopKConfig::new(3, Eps::new(6.0).unwrap());
    let seed = 0xE0_6333;
    for method in [
        TopKMethod::Hec,
        TopKMethod::PtjShuffled { validity: true },
        TopKMethod::PtsPem {
            validity: false,
            global: true,
        },
        TopKMethod::PtsShuffled {
            validity: true,
            global: true,
            correlated: true,
        },
    ] {
        let legacy_seq = multiclass_ldp::topk::mine(
            method,
            config,
            domains,
            &data,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();
        let exec_seq = execute(
            method,
            config,
            domains,
            &Exec::sequential().seed(seed),
            SliceSource::new(&data),
        )
        .unwrap();
        assert_eq!(
            legacy_seq.per_class,
            exec_seq.per_class,
            "{} sequential",
            method.name()
        );
        assert_eq!(legacy_seq.comm, exec_seq.comm);

        for (threads, chunk) in COMBOS {
            let what = format!("{} t={threads} chunk={chunk}", method.name());
            let legacy_batch =
                multiclass_ldp::topk::mine_batch(method, config, domains, &data, seed, threads)
                    .unwrap();
            let legacy_stream = multiclass_ldp::topk::mine_stream(
                method,
                config,
                domains,
                &mut SliceSource::new(&data),
                seed,
                StreamConfig::new(threads).with_chunk_items(chunk),
            )
            .unwrap();
            let exec_batch = execute(
                method,
                config,
                domains,
                &Exec::batch().seed(seed).threads(threads),
                SliceSource::new(&data),
            )
            .unwrap();
            let exec_stream = execute(
                method,
                config,
                domains,
                &Exec::stream().seed(seed).threads(threads).chunk_size(chunk),
                SliceSource::new(&data),
            )
            .unwrap();
            let exec_auto = execute(
                method,
                config,
                domains,
                &Exec::seeded(seed).threads(threads).chunk_size(chunk),
                SliceSource::new(&data),
            )
            .unwrap();
            for (label, out) in [
                ("legacy stream", &legacy_stream),
                ("exec batch", &exec_batch),
                ("exec stream", &exec_stream),
                ("exec auto", &exec_auto),
            ] {
                assert_eq!(legacy_batch.per_class, out.per_class, "{what} [{label}]");
                assert_eq!(legacy_batch.comm, out.comm, "{what} [{label}]");
                assert!(
                    (legacy_batch.broadcast_bits_per_user - out.broadcast_bits_per_user).abs()
                        == 0.0,
                    "{what} [{label}]"
                );
            }
        }
    }
}

/// Sequential mode must genuinely differ from the sharded modes (different
/// RNG discipline) — otherwise the matrix above could pass vacuously with
/// all four modes wired to one implementation.
#[test]
fn sequential_and_sharded_modes_are_distinct_streams() {
    let domains = Domains::new(3, 32).unwrap();
    let data = sample_pairs(domains, SHARD + 700);
    let eps = Eps::new(2.0).unwrap();
    let seq = Framework::PtsCp { label_frac: 0.5 }
        .execute(
            eps,
            domains,
            &Exec::sequential().seed(1),
            SliceSource::new(&data),
        )
        .unwrap();
    let batch = Framework::PtsCp { label_frac: 0.5 }
        .execute(
            eps,
            domains,
            &Exec::batch().seed(1).threads(2),
            SliceSource::new(&data),
        )
        .unwrap();
    let differs = (0..domains.classes())
        .any(|l| (0..domains.items()).any(|i| seq.table.get(l, i) != batch.table.get(l, i)));
    assert!(differs, "sequential and batch modes drew identical noise");
}
