//! Failure injection and edge-case robustness across the public API: a
//! production deployment sees malformed reports, degenerate domains and
//! pathological populations; none of them may panic or silently corrupt
//! estimates.

use multiclass_ldp::core::{
    CorrelatedPerturbation, CpAggregator, CpReport, ValidityInput, ValidityPerturbation,
    VpAggregator,
};
use multiclass_ldp::oracles::BitVec;
use multiclass_ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------- reports

#[test]
fn aggregators_reject_malformed_reports_without_state_damage() {
    let domains = Domains::new(3, 8).unwrap();
    let mech = CorrelatedPerturbation::with_total(Eps::new(2.0).unwrap(), domains).unwrap();
    let mut agg = CpAggregator::new(&mech);
    let mut rng = StdRng::seed_from_u64(1);

    // Wrong label domain.
    let bad_label = CpReport {
        label: 99,
        bits: BitVec::zeros(9),
    };
    assert!(agg.absorb(&bad_label).is_err());
    // Wrong bit length.
    let bad_bits = CpReport {
        label: 0,
        bits: BitVec::zeros(4),
    };
    assert!(agg.absorb(&bad_bits).is_err());
    // State unchanged: rejected reports must not count.
    assert_eq!(agg.report_count(), 0);

    // A valid report still works afterwards.
    let ok = mech.privatize(LabelItem::new(0, 0), &mut rng).unwrap();
    agg.absorb(&ok).unwrap();
    assert_eq!(agg.report_count(), 1);
}

#[test]
fn vp_aggregator_handles_adversarial_all_ones_reports() {
    // A malicious client sends all-ones vectors (a poisoning attempt, cf.
    // the related-work discussion). The aggregator must accept it (it is a
    // syntactically valid report) but the flag bit routes it to the
    // invalid bucket, limiting the damage — exactly VP's design.
    let vp = ValidityPerturbation::new(Eps::new(1.0).unwrap(), 8).unwrap();
    let mut agg = VpAggregator::new(&vp);
    let mut ones = BitVec::zeros(9);
    for i in 0..9 {
        ones.set(i, true);
    }
    for _ in 0..100 {
        agg.absorb(&ones).unwrap();
    }
    assert_eq!(agg.raw_flag_count(), 100, "flag set ⇒ item bits ignored");
    assert!(agg.raw_counts().iter().all(|&c| c == 0));
}

// ---------------------------------------------------------------- domains

#[test]
fn degenerate_domains_work_end_to_end() {
    // One class, one item: everything should run and estimate ~N.
    let domains = Domains::new(1, 1).unwrap();
    let data = vec![LabelItem::new(0, 0); 1_000];
    for (i, fw) in Framework::fig6_set().into_iter().enumerate() {
        let plan = Exec::sequential().seed(2 + i as u64);
        let result = fw
            .execute(
                Eps::new(1.0).unwrap(),
                domains,
                &plan,
                SliceSource::new(&data),
            )
            .unwrap();
        let est = result.table.get(0, 0);
        assert!(
            (est - 1_000.0).abs() < 500.0,
            "{}: degenerate estimate {est}",
            fw.name()
        );
    }
}

#[test]
fn single_user_dataset_does_not_panic() {
    let domains = Domains::new(2, 16).unwrap();
    let data = vec![LabelItem::new(1, 7)];
    // HEC requires a user per class group and must error cleanly.
    assert!(Framework::Hec
        .execute(
            Eps::new(1.0).unwrap(),
            domains,
            &Exec::sequential().seed(3),
            SliceSource::new(&data),
        )
        .is_err());
    // The others must produce finite estimates.
    for (i, fw) in [
        Framework::Ptj,
        Framework::Pts { label_frac: 0.5 },
        Framework::PtsCp { label_frac: 0.5 },
    ]
    .into_iter()
    .enumerate()
    {
        let result = fw
            .execute(
                Eps::new(1.0).unwrap(),
                domains,
                &Exec::sequential().seed(4 + i as u64),
                SliceSource::new(&data),
            )
            .unwrap();
        assert!(
            result.table.values().iter().all(|v| v.is_finite()),
            "{}",
            fw.name()
        );
    }
}

// ----------------------------------------------------------------- top-k

#[test]
fn k_larger_than_domain_is_served_gracefully() {
    let domains = Domains::new(2, 8).unwrap();
    let data: Vec<LabelItem> = (0..20_000)
        .map(|u| LabelItem::new((u % 2) as u32, (u % 8) as u32))
        .collect();
    let config = TopKConfig::new(20, Eps::new(4.0).unwrap()); // k = 20 > d = 8
    for (i, method) in TopKMethod::fig7_set().into_iter().enumerate() {
        let plan = Exec::sequential().seed(40 + i as u64);
        let result = execute(method, config, domains, &plan, SliceSource::new(&data)).unwrap();
        for (c, items) in result.per_class.iter().enumerate() {
            assert!(
                items.len() <= 8,
                "{} class {c}: {}",
                method.name(),
                items.len()
            );
            let unique: std::collections::HashSet<_> = items.iter().collect();
            assert_eq!(unique.len(), items.len(), "{}", method.name());
        }
    }
}

#[test]
fn all_users_in_one_class_leaves_other_classes_quiet() {
    let domains = Domains::new(4, 64).unwrap();
    let data: Vec<LabelItem> = (0..40_000)
        .map(|u| LabelItem::new(0, (u % 5) as u32))
        .collect();
    let config = TopKConfig::new(3, Eps::new(6.0).unwrap());
    let result = execute(
        TopKMethod::PtsShuffled {
            validity: true,
            global: true,
            correlated: true,
        },
        config,
        domains,
        &Exec::sequential().seed(5),
        SliceSource::new(&data),
    )
    .unwrap();
    // The populated class finds its heavy items.
    assert!(
        result.per_class[0].iter().any(|&i| i < 5),
        "class 0 should find a true item: {:?}",
        result.per_class[0]
    );
    // Empty classes return at most k arbitrary candidates, never panic.
    for c in 1..4 {
        assert!(result.per_class[c].len() <= 3);
    }
}

#[test]
fn extreme_budgets_behave() {
    let domains = Domains::new(2, 16).unwrap();
    let data: Vec<LabelItem> = (0..10_000)
        .map(|u| LabelItem::new((u % 2) as u32, (u % 4) as u32))
        .collect();
    // Tiny ε: results are noise but finite and well-formed.
    let tiny = Framework::PtsCp { label_frac: 0.5 }
        .execute(
            Eps::new(0.01).unwrap(),
            domains,
            &Exec::sequential().seed(6),
            SliceSource::new(&data),
        )
        .unwrap();
    assert!(tiny.table.values().iter().all(|v| v.is_finite()));
    // Huge ε: estimates are near-exact.
    let huge = Framework::PtsCp { label_frac: 0.5 }
        .execute(
            Eps::new(20.0).unwrap(),
            domains,
            &Exec::sequential().seed(7),
            SliceSource::new(&data),
        )
        .unwrap();
    let truth = FrequencyTable::ground_truth(domains, &data).unwrap();
    for label in 0..2 {
        for item in 0..4 {
            assert!(
                (huge.table.get(label, item) - truth.get(label, item)).abs() < 200.0,
                "({label},{item})"
            );
        }
    }
}

#[test]
fn validity_input_extremes() {
    // All users invalid: estimates must be ≈ 0 for all items, and the
    // invalid-count estimate ≈ N.
    let vp = ValidityPerturbation::new(Eps::new(2.0).unwrap(), 8).unwrap();
    let mut agg = VpAggregator::new(&vp);
    let mut rng = StdRng::seed_from_u64(7);
    let n = 20_000;
    for _ in 0..n {
        agg.absorb(&vp.privatize(ValidityInput::Invalid, &mut rng).unwrap())
            .unwrap();
    }
    assert!((agg.estimate_invalid() - n as f64).abs() < 0.05 * n as f64);
    for est in agg.estimate() {
        assert!(est.abs() < 0.05 * n as f64);
    }
}
