//! Seeded-RNG determinism regression tests.
//!
//! Every pipeline in the workspace takes an explicit RNG, so identical seeds
//! must produce bit-identical outputs. HEC/PEM group users by position and
//! the shuffling scheme replays server seeds client-side, which makes seed
//! stability a correctness property, not a convenience — a refactor that
//! reorders RNG draws shows up here before it silently changes every
//! benchmark number.

use multiclass_ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_data(domains: Domains, n: usize) -> Vec<LabelItem> {
    (0..n)
        .map(|u| {
            LabelItem::new(
                (u % domains.classes() as usize) as u32,
                ((u * 7919) % domains.items() as usize) as u32,
            )
        })
        .collect()
}

#[test]
fn pts_cp_tables_identical_for_identical_seeds() {
    let domains = Domains::new(3, 32).unwrap();
    let data = sample_data(domains, 20_000);
    let eps = Eps::new(2.0).unwrap();
    let fw = Framework::PtsCp { label_frac: 0.5 };

    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        fw.run(eps, domains, &data, &mut rng).unwrap()
    };
    let a = run(12345);
    let b = run(12345);
    for label in 0..domains.classes() {
        for item in 0..domains.items() {
            let (x, y) = (a.table.get(label, item), b.table.get(label, item));
            assert!(
                x == y,
                "seed-identical runs diverged at ({label},{item}): {x} vs {y}"
            );
        }
    }

    // And a different seed must actually change the noise (guards against a
    // run() that ignores the caller's RNG).
    let c = run(54321);
    let differs = (0..domains.classes())
        .any(|l| (0..domains.items()).any(|i| a.table.get(l, i) != c.table.get(l, i)));
    assert!(differs, "different seeds produced identical noisy tables");
}

#[test]
fn topk_mining_identical_for_identical_seeds() {
    let domains = Domains::new(2, 64).unwrap();
    let data = sample_data(domains, 30_000);
    let config = TopKConfig::new(5, Eps::new(4.0).unwrap());
    let method = TopKMethod::PtsShuffled {
        validity: true,
        global: true,
        correlated: true,
    };

    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        mine(method, config, domains, &data, &mut rng).unwrap()
    };
    assert_eq!(
        run(7).per_class,
        run(7).per_class,
        "seed-identical top-k runs diverged"
    );
}
