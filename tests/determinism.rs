//! Seeded-RNG determinism regression tests.
//!
//! Every pipeline in the workspace takes an explicit RNG, so identical seeds
//! must produce bit-identical outputs. HEC/PEM group users by position and
//! the shuffling scheme replays server seeds client-side, which makes seed
//! stability a correctness property, not a convenience — a refactor that
//! reorders RNG draws shows up here before it silently changes every
//! benchmark number.

use multiclass_ldp::prelude::*;

fn slice<'a>(data: &'a [LabelItem]) -> SliceSource<'a, LabelItem> {
    SliceSource::new(data)
}

fn sample_data(domains: Domains, n: usize) -> Vec<LabelItem> {
    (0..n)
        .map(|u| {
            LabelItem::new(
                (u % domains.classes() as usize) as u32,
                ((u * 7919) % domains.items() as usize) as u32,
            )
        })
        .collect()
}

#[test]
fn pts_cp_tables_identical_for_identical_seeds() {
    let domains = Domains::new(3, 32).unwrap();
    let data = sample_data(domains, 20_000);
    let eps = Eps::new(2.0).unwrap();
    let fw = Framework::PtsCp { label_frac: 0.5 };

    let run = |seed: u64| {
        fw.execute(eps, domains, &Exec::sequential().seed(seed), slice(&data))
            .unwrap()
    };
    let a = run(12345);
    let b = run(12345);
    for label in 0..domains.classes() {
        for item in 0..domains.items() {
            let (x, y) = (a.table.get(label, item), b.table.get(label, item));
            assert!(
                x == y,
                "seed-identical runs diverged at ({label},{item}): {x} vs {y}"
            );
        }
    }

    // And a different seed must actually change the noise (guards against a
    // run() that ignores the caller's RNG).
    let c = run(54321);
    let differs = (0..domains.classes())
        .any(|l| (0..domains.items()).any(|i| a.table.get(l, i) != c.table.get(l, i)));
    assert!(differs, "different seeds produced identical noisy tables");
}

#[test]
fn topk_mining_identical_for_identical_seeds() {
    let domains = Domains::new(2, 64).unwrap();
    let data = sample_data(domains, 30_000);
    let config = TopKConfig::new(5, Eps::new(4.0).unwrap());
    let method = TopKMethod::PtsShuffled {
        validity: true,
        global: true,
        correlated: true,
    };

    let run = |seed: u64| {
        execute(
            method,
            config,
            domains,
            &Exec::sequential().seed(seed),
            slice(&data),
        )
        .unwrap()
    };
    assert_eq!(
        run(7).per_class,
        run(7).per_class,
        "seed-identical top-k runs diverged"
    );
}

/// The batch runtime's headline guarantee: `threads = N` produces
/// bit-identical estimates to `threads = 1` for every framework. The CI
/// thread matrix runs this file under `MCIM_THREADS=1` and `MCIM_THREADS=4`,
/// so `configured_threads()` exercises a genuinely different worker count
/// against the sequential reference.
#[test]
fn batch_plan_thread_matrix_is_bit_identical_for_every_framework() {
    let domains = Domains::new(3, 48).unwrap();
    let data = sample_data(domains, 25_000);
    let eps = Eps::new(2.0).unwrap();
    let threads = parallel::configured_threads();
    for fw in Framework::fig6_set() {
        let seq = fw
            .execute(
                eps,
                domains,
                &Exec::batch().seed(2024).threads(1),
                slice(&data),
            )
            .unwrap();
        for t in [2, threads] {
            let par = fw
                .execute(
                    eps,
                    domains,
                    &Exec::batch().seed(2024).threads(t),
                    slice(&data),
                )
                .unwrap();
            for label in 0..domains.classes() {
                for item in 0..domains.items() {
                    assert!(
                        par.table.get(label, item) == seq.table.get(label, item),
                        "{} threads={t} diverged at ({label},{item})",
                        fw.name()
                    );
                }
            }
        }
    }
}

/// Same guarantee for the standalone validity-perturbation pipeline (the
/// "VP" row of the acceptance matrix): batched privatization equals N
/// sequential per-shard privatize calls, and sharded aggregation equals
/// sequential absorption bit-for-bit.
#[test]
fn vp_batch_thread_matrix_is_bit_identical() {
    let vp = ValidityPerturbation::new(Eps::new(1.5).unwrap(), 96).unwrap();
    let inputs: Vec<ValidityInput> = (0..20_000)
        .map(|u| {
            if u % 4 == 0 {
                ValidityInput::Invalid
            } else {
                ValidityInput::Valid(u as u32 % 96)
            }
        })
        .collect();
    let reports = vp.privatize_batch(&inputs, 9, 1).unwrap();

    // Batched privatization == sequential privatize calls, shard by shard.
    let mut reference = Vec::new();
    for (s, chunk) in inputs.chunks(parallel::SHARD_SIZE).enumerate() {
        let mut rng = parallel::shard_rng(9, s as u64);
        for &input in chunk {
            reference.push(vp.privatize(input, &mut rng).unwrap());
        }
    }
    assert_eq!(reports, reference);

    let mut seq = VpAggregator::new(&vp);
    for r in &reports {
        seq.absorb(r).unwrap();
    }
    for t in [1, 2, parallel::configured_threads()] {
        assert_eq!(vp.privatize_batch(&inputs, 9, t).unwrap(), reports);
        let mut par = VpAggregator::new(&vp);
        par.absorb_batch(&reports, t).unwrap();
        assert_eq!(par.raw_counts(), seq.raw_counts(), "threads={t}");
        assert_eq!(par.raw_flag_count(), seq.raw_flag_count());
        assert_eq!(par.estimate(), seq.estimate());
    }
}

/// Top-k mining on the batch runtime is a pure function of the base seed —
/// the thread count never changes the mined sets.
#[test]
fn topk_batch_plan_thread_matrix_is_bit_identical() {
    let domains = Domains::new(2, 64).unwrap();
    let data = sample_data(domains, 24_000);
    let config = TopKConfig::new(4, Eps::new(4.0).unwrap());
    let threads = parallel::configured_threads();
    for method in [
        TopKMethod::Hec,
        TopKMethod::PtjShuffled { validity: true },
        TopKMethod::PtsShuffled {
            validity: true,
            global: true,
            correlated: true,
        },
    ] {
        let seq = execute(
            method,
            config,
            domains,
            &Exec::batch().seed(77).threads(1),
            slice(&data),
        )
        .unwrap();
        for t in [2, threads] {
            let par = execute(
                method,
                config,
                domains,
                &Exec::batch().seed(77).threads(t),
                slice(&data),
            )
            .unwrap();
            assert_eq!(
                par.per_class,
                seq.per_class,
                "{} threads={t}",
                method.name()
            );
            assert_eq!(par.comm, seq.comm, "{}", method.name());
        }
    }
}
