//! The paper's headline claims, verified end-to-end at test scale. Each
//! test names the paper artifact it reproduces.

use multiclass_ldp::core::analysis::{self, CpProbs, Probs};
use multiclass_ldp::datasets::{jd_like, syn2, RealConfig};
use multiclass_ldp::prelude::*;

/// §V-A / Theorems 4-5: validity perturbation injects strictly less
/// invalid-user noise than any plain-LDP random substitution, across the
/// whole (ε, d) grid the paper's evaluation touches.
#[test]
fn claim_vp_reduces_invalid_noise_everywhere() {
    for eps_v in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let pr = Probs::oue(Eps::new(eps_v).unwrap());
        for d in [2u32, 16, 128, 1024, 16384] {
            let plain = analysis::thm4_invalid_noise_mean(d, 1000.0, pr);
            let vp = analysis::thm5_vp_invalid_noise_mean(1000.0, pr);
            assert!(vp < plain, "ε={eps_v} d={d}: {vp} !< {plain}");
        }
    }
}

/// Theorem 10: correlated perturbation strictly dominates independent
/// GRR+OUE perturbation in estimator variance.
#[test]
fn claim_cp_variance_dominates_pts() {
    for eps_v in [0.5, 1.0, 2.0, 4.0] {
        for classes in [2u32, 5, 20] {
            let pr = CpProbs::even_split(Eps::new(eps_v).unwrap(), classes).unwrap();
            let (f, n, f_item, n_total) = (500.0, 5_000.0, 2_000.0, 100_000.0);
            let cp = analysis::thm8_cp_variance(f, n, n_total, pr);
            let pts = analysis::pts_variance(f, n, f_item, n_total, pr);
            assert!(cp < pts, "ε={eps_v} c={classes}: {cp} !< {pts}");
            assert!(analysis::thm10_variance_gap_lower_bound(f, n, f_item, n_total, pr) > 0.0);
        }
    }
}

/// Fig. 5(b): the empirical variance of the CP estimator grows with the
/// class size n, and CP's empirical variance stays below plain PTS.
#[test]
fn claim_variance_grows_with_class_size() {
    // At ε = 2 Eq. (5)'s n-coefficient dominates the N-term, so the
    // largest class (~68% of N) must show ≈2.5× the variance of the
    // smallest (~0.3%); we assert a conservative 1.4× with enough trials
    // to separate it from estimation noise.
    let ds = syn2(0.004, 6);
    let truth = ds.ground_truth();
    let eps = Eps::new(2.0).unwrap();
    let trials = 150;
    let mut per_class_sq = [0.0f64; 4];
    for t in 0..trials {
        let result = Framework::PtsCp { label_frac: 0.5 }
            .execute(
                eps,
                ds.domains,
                &Exec::sequential().seed(1000 + t),
                SliceSource::new(&ds.pairs),
            )
            .unwrap();
        for c in 0..4 {
            let d = result.table.get(c, 0) - truth.get(c, 0);
            per_class_sq[c as usize] += d * d;
        }
    }
    assert!(
        per_class_sq[3] > 1.4 * per_class_sq[0],
        "variance must grow with n: {per_class_sq:?}"
    );
}

/// Fig. 8: on the JD-like imbalanced workload the optimized PTS pipeline
/// retains utility on the two tiny classes where PTJ collapses.
#[test]
fn claim_global_candidates_rescue_tiny_classes() {
    let ds = jd_like(RealConfig {
        users: 200_000,
        items: 1024,
        seed: 17,
    });
    let k = 10;
    let truth = ds.true_top_k(k);
    let config = TopKConfig::new(k, Eps::new(8.0).unwrap());
    let trials = 3;
    let (mut pts_tiny, mut ptj_tiny) = (0.0, 0.0);
    for t in 0..trials {
        let pts = execute(
            TopKMethod::PtsShuffled {
                validity: true,
                global: true,
                correlated: true,
            },
            config,
            ds.domains,
            &Exec::sequential().seed(2000 + t),
            SliceSource::new(&ds.pairs),
        )
        .unwrap();
        let ptj = execute(
            TopKMethod::PtjPem { validity: false },
            config,
            ds.domains,
            &Exec::sequential().seed(2100 + t),
            SliceSource::new(&ds.pairs),
        )
        .unwrap();
        for c in [3usize, 4] {
            pts_tiny += f1_at_k(&pts.per_class[c], &truth[c]);
            ptj_tiny += f1_at_k(&ptj.per_class[c], &truth[c]);
        }
    }
    assert!(
        pts_tiny > ptj_tiny,
        "tiny classes: PTS {pts_tiny} must beat PTJ {ptj_tiny}"
    );
}

/// §V-C / Table II: PTJ's uplink exceeds PTS's by roughly the class count
/// when OUE is the oracle (joint domain c·d vs item domain d).
#[test]
fn claim_ptj_pays_c_times_uplink() {
    let domains = Domains::new(8, 512).unwrap();
    let data: Vec<LabelItem> = (0..500).map(|u| LabelItem::new(u % 8, u % 512)).collect();
    let eps = Eps::new(1.0).unwrap();
    let plan = Exec::sequential().seed(3000);
    let ptj = Framework::Ptj
        .execute(eps, domains, &plan, SliceSource::new(&data))
        .unwrap();
    let pts = Framework::Pts { label_frac: 0.5 }
        .execute(eps, domains, &plan, SliceSource::new(&data))
        .unwrap();
    let ratio = ptj.comm.bits_per_user() / pts.comm.bits_per_user();
    assert!(
        ratio > 6.0 && ratio < 9.0,
        "PTJ/PTS uplink ratio ≈ c = 8, got {ratio}"
    );
}

/// The b-test of Algorithm 2: with imbalanced classes the tiny groups are
/// flagged too noisy for CP while the big ones keep it. We verify through
/// the public API that both code paths execute without degrading shape.
#[test]
fn claim_noise_test_keeps_all_classes_functional() {
    let ds = jd_like(RealConfig {
        users: 100_000,
        items: 512,
        seed: 23,
    });
    let config = TopKConfig::new(5, Eps::new(4.0).unwrap());
    let result = execute(
        TopKMethod::PtsShuffled {
            validity: true,
            global: true,
            correlated: true,
        },
        config,
        ds.domains,
        &Exec::sequential().seed(4000),
        SliceSource::new(&ds.pairs),
    )
    .unwrap();
    assert_eq!(result.per_class.len(), 5);
    for (c, items) in result.per_class.iter().enumerate() {
        assert!(items.len() <= 5, "class {c}");
        for &i in items {
            assert!(i < 512);
        }
    }
}
