//! Cross-crate integration tests: datasets → frameworks/miners → metrics,
//! through the root facade's public API only.

use multiclass_ldp::datasets::{anime_like, syn1, RealConfig};
use multiclass_ldp::prelude::*;

#[test]
fn frequency_pipeline_on_syn1() {
    // SYN1's Latin-square structure: every framework must reproduce the
    // 4-level pair counts at high ε.
    let ds = syn1(0.005, 3);
    let truth = ds.ground_truth();
    let eps = Eps::new(4.0).unwrap();
    for (i, fw) in [
        Framework::Ptj,
        Framework::Pts { label_frac: 0.5 },
        Framework::PtsCp { label_frac: 0.5 },
    ]
    .into_iter()
    .enumerate()
    {
        let plan = Exec::sequential().seed(41 + i as u64);
        let result = fw
            .execute(eps, ds.domains, &plan, SliceSource::new(&ds.pairs))
            .unwrap();
        let err = rmse(result.table.values(), truth.values());
        // Largest cell is 5000; a calibrated estimator at ε=4 with ~55k
        // users stays well under 10% of it.
        assert!(err < 500.0, "{}: rmse {err}", fw.name());
    }
}

#[test]
fn frequency_estimates_are_consistent_with_class_totals() {
    let ds = syn1(0.002, 4);
    let result = Framework::PtsCp { label_frac: 0.5 }
        .execute(
            Eps::new(3.0).unwrap(),
            ds.domains,
            &Exec::sequential().seed(42),
            SliceSource::new(&ds.pairs),
        )
        .unwrap();
    let sizes = ds.class_sizes();
    for c in 0..4u32 {
        let estimated: f64 = result.table.class_total(c);
        let true_size = sizes[c as usize] as f64;
        assert!(
            (estimated - true_size).abs() < 0.25 * true_size.max(1000.0),
            "class {c}: estimated total {estimated} vs {true_size}"
        );
    }
}

#[test]
fn topk_pipeline_through_facade() {
    let ds = anime_like(RealConfig {
        users: 60_000,
        items: 512,
        seed: 5,
    });
    let k = 10;
    let truth = ds.true_top_k(k);
    let result = execute(
        TopKMethod::PtjShuffled { validity: true },
        TopKConfig::new(k, Eps::new(8.0).unwrap()),
        ds.domains,
        &Exec::sequential().seed(43),
        SliceSource::new(&ds.pairs),
    )
    .unwrap();
    for (c, (mined, tru)) in result.per_class.iter().zip(&truth).enumerate() {
        let f1 = f1_at_k(mined, tru);
        let ncr = ncr_at_k(mined, tru);
        assert!(f1 > 0.4, "class {c}: f1 {f1}");
        assert!(ncr >= f1 - 0.2, "class {c}: ncr {ncr} vs f1 {f1}");
    }
}

#[test]
fn error_paths_surface_cleanly() {
    // Domain violations and bad budgets come back as errors, not panics.
    assert!(Eps::new(-1.0).is_err());
    assert!(Domains::new(0, 5).is_err());
    let domains = Domains::new(2, 4).unwrap();
    let bad = vec![LabelItem::new(5, 0)];
    for plan in [Exec::sequential(), Exec::batch(), Exec::stream()] {
        let result = Framework::Ptj.execute(
            Eps::new(1.0).unwrap(),
            domains,
            &plan,
            SliceSource::new(&bad),
        );
        assert!(result.is_err(), "{plan}");
    }
}

#[test]
fn oracle_facade_round_trip() {
    // The substrate is reachable and usable through the facade.
    let eps = Eps::new(2.0).unwrap();
    let oracle = Oracle::adaptive(eps, 100).unwrap();
    let mut agg = Aggregator::new(&oracle);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(44);
    for _ in 0..20_000 {
        agg.absorb(&oracle.privatize(42, &mut rng).unwrap())
            .unwrap();
    }
    let est = agg.estimate();
    assert!((est[42] - 20_000.0).abs() < 1_500.0, "est {}", est[42]);
}

#[test]
fn deterministic_given_seed_across_the_stack() {
    let ds = syn1(0.001, 9);
    let run = |plan: Exec| {
        Framework::PtsCp { label_frac: 0.5 }
            .execute(
                Eps::new(1.0).unwrap(),
                ds.domains,
                &plan,
                SliceSource::new(&ds.pairs),
            )
            .unwrap()
            .table
    };
    for plan in [Exec::sequential().seed(123), Exec::seeded(123).threads(2)] {
        assert_eq!(run(plan).values(), run(plan).values(), "{plan}");
    }
}
