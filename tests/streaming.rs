//! Streaming-ingestion equivalence: every `*_stream` API must produce
//! **bit-identical** results to its `*_batch` counterpart, for every chunk
//! size (including ones that split shards) and every thread count. The CI
//! thread matrix runs this file under `MCIM_THREADS=1` and `=4`.

use multiclass_ldp::core::frameworks::{
    Hec, HecAggregator, Ptj, PtjAggregator, Pts, PtsAggregator,
};
use multiclass_ldp::oracles::stream::{SliceSource, StreamConfig};
use multiclass_ldp::prelude::*;
use multiclass_ldp::topk::{Pem, PemConfig};

const SHARD: usize = parallel::SHARD_SIZE;

fn sample_data(domains: Domains, n: usize) -> Vec<LabelItem> {
    (0..n)
        .map(|u| {
            LabelItem::new(
                (u % domains.classes() as usize) as u32,
                ((u * 7919) % domains.items() as usize) as u32,
            )
        })
        .collect()
}

fn config(chunk: usize, threads: usize) -> StreamConfig {
    StreamConfig::new(threads).with_chunk_items(chunk)
}

/// Chunk sizes that hit every boundary case: single item, one short of a
/// shard, exactly a shard, one past, and the whole stream at once.
fn boundary_chunks(n: usize) -> [usize; 5] {
    [1, SHARD - 1, SHARD, SHARD + 1, n]
}

#[test]
fn aggregator_absorb_stream_matches_batch_for_every_oracle() {
    let eps = Eps::new(1.0).unwrap();
    for oracle in [
        Oracle::grr(eps, 6).unwrap(),
        Oracle::oue(eps, 200).unwrap(),
        Oracle::olh(Eps::new(2.0).unwrap(), 32).unwrap(),
    ] {
        let d = oracle.domain_size();
        let values: Vec<u32> = (0..SHARD as u32 + 700).map(|u| (u * 13) % d).collect();
        let reports = oracle.privatize_batch(&values, 8, 1).unwrap();
        let mut batch = Aggregator::new(&oracle);
        batch.absorb_batch(&reports, 4).unwrap();
        for chunk in [SHARD - 1, SHARD + 1] {
            for threads in [1, 4] {
                let mut streamed = Aggregator::new(&oracle);
                streamed
                    .absorb_stream(&mut SliceSource::new(&reports), config(chunk, threads))
                    .unwrap();
                assert_eq!(
                    streamed.raw_counts(),
                    batch.raw_counts(),
                    "{} chunk={chunk} threads={threads}",
                    oracle.name()
                );
                assert_eq!(streamed.report_count(), batch.report_count());
                assert_eq!(streamed.estimate(), batch.estimate());
            }
        }
    }
}

#[test]
fn vp_and_cp_absorb_stream_match_batch() {
    let n = SHARD + 900;
    // VP
    let vp = ValidityPerturbation::new(Eps::new(1.5).unwrap(), 96).unwrap();
    let inputs: Vec<ValidityInput> = (0..n)
        .map(|u| {
            if u % 4 == 0 {
                ValidityInput::Invalid
            } else {
                ValidityInput::Valid(u as u32 % 96)
            }
        })
        .collect();
    let reports = vp.privatize_batch(&inputs, 3, 1).unwrap();
    let mut batch = VpAggregator::new(&vp);
    batch.absorb_batch(&reports, 4).unwrap();
    for threads in [1, 4] {
        let mut streamed = VpAggregator::new(&vp);
        streamed
            .absorb_stream(&mut SliceSource::new(&reports), config(SHARD + 1, threads))
            .unwrap();
        assert_eq!(
            streamed.raw_counts(),
            batch.raw_counts(),
            "VP threads={threads}"
        );
        assert_eq!(streamed.raw_flag_count(), batch.raw_flag_count());
        assert_eq!(streamed.estimate(), batch.estimate());
    }
    // CP
    let domains = Domains::new(4, 48).unwrap();
    let cp = CorrelatedPerturbation::with_total(Eps::new(2.0).unwrap(), domains).unwrap();
    let pairs = sample_data(domains, n);
    let reports = cp.privatize_batch(&pairs, 5, 1).unwrap();
    let mut batch = CpAggregator::new(&cp);
    batch.absorb_batch(&reports, 4).unwrap();
    for threads in [1, 4] {
        let mut streamed = CpAggregator::new(&cp);
        streamed
            .absorb_stream(&mut SliceSource::new(&reports), config(SHARD - 1, threads))
            .unwrap();
        assert_eq!(streamed.report_count(), batch.report_count());
        for label in 0..domains.classes() {
            assert_eq!(
                streamed.raw_label_count(label),
                batch.raw_label_count(label),
                "CP threads={threads}"
            );
            for item in 0..domains.items() {
                assert_eq!(
                    streamed.raw_pair_count(label, item),
                    batch.raw_pair_count(label, item),
                    "CP threads={threads} ({label},{item})"
                );
                assert!(
                    streamed.estimate().get(label, item) == batch.estimate().get(label, item),
                    "CP threads={threads}"
                );
            }
        }
    }
}

#[test]
fn pts_ptj_hec_absorb_stream_match_batch() {
    let domains = Domains::new(3, 40).unwrap();
    let n = SHARD + 600;
    let pairs = sample_data(domains, n);
    let eps = Eps::new(2.0).unwrap();

    let pts = Pts::new(Eps::new(1.0).unwrap(), Eps::new(1.0).unwrap(), domains).unwrap();
    let reports = pts.privatize_batch(&pairs, 6, 1).unwrap();
    let mut batch = PtsAggregator::new(&pts);
    batch.absorb_batch(&reports, 4).unwrap();
    for threads in [1, 4] {
        let mut streamed = PtsAggregator::new(&pts);
        streamed
            .absorb_stream(&mut SliceSource::new(&reports), config(SHARD + 1, threads))
            .unwrap();
        assert_eq!(streamed.estimate().get(1, 2), batch.estimate().get(1, 2));
        assert_eq!(streamed.report_count(), batch.report_count());
    }

    let ptj = Ptj::new(eps, domains).unwrap();
    let reports = ptj.privatize_batch(&pairs, 7, 1).unwrap();
    let mut batch = PtjAggregator::new(&ptj);
    batch.absorb_batch(&reports, 4).unwrap();
    for threads in [1, 4] {
        let mut streamed = PtjAggregator::new(&ptj);
        streamed
            .absorb_stream(&mut SliceSource::new(&reports), config(SHARD - 1, threads))
            .unwrap();
        assert_eq!(streamed.estimate().get(2, 3), batch.estimate().get(2, 3));
        assert_eq!(streamed.report_count(), batch.report_count());
    }

    let hec = Hec::new(eps, domains).unwrap();
    let reports = hec.privatize_batch(0, &pairs, 9, 1).unwrap();
    let mut batch = HecAggregator::new(&hec);
    batch.absorb_batch(&reports, 4).unwrap();
    for threads in [1, 4] {
        let mut streamed = HecAggregator::new(&hec);
        streamed
            .absorb_stream(&mut SliceSource::new(&reports), config(SHARD + 1, threads))
            .unwrap();
        assert_eq!(
            streamed.estimate().unwrap().get(0, 1),
            batch.estimate().unwrap().get(0, 1)
        );
        assert_eq!(streamed.report_count(), batch.report_count());
    }
}

/// The chunk-boundary property: a stream plan equals a batch plan
/// bit-for-bit at chunk sizes 1, shard−1, shard, shard+1 and n, for every
/// framework (RNG state must carry correctly across split shards).
#[test]
fn stream_plans_match_batch_plans_at_every_chunk_boundary() {
    let domains = Domains::new(3, 32).unwrap();
    let n = 2 * SHARD + 537;
    let data = sample_data(domains, n);
    let eps = Eps::new(2.0).unwrap();
    let threads = parallel::configured_threads();
    for fw in Framework::fig6_set() {
        let batch = fw
            .execute(
                eps,
                domains,
                &Exec::batch().seed(2025).threads(threads),
                SliceSource::new(&data),
            )
            .unwrap();
        for chunk in boundary_chunks(n) {
            for t in [1, threads] {
                let plan = Exec::stream().seed(2025).threads(t).chunk_size(chunk);
                let streamed = fw
                    .execute(eps, domains, &plan, SliceSource::new(&data))
                    .unwrap();
                assert_eq!(
                    streamed.comm,
                    batch.comm,
                    "{} chunk={chunk} threads={t}",
                    fw.name()
                );
                for label in 0..domains.classes() {
                    for item in 0..domains.items() {
                        assert!(
                            streamed.table.get(label, item) == batch.table.get(label, item),
                            "{} chunk={chunk} threads={t} diverged at ({label},{item})",
                            fw.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn pem_stream_plans_match_batch_plans() {
    let d = 128u32;
    let n = SHARD + 2200;
    let items: Vec<Option<u32>> = (0..n)
        .map(|u| {
            if u % 5 == 0 {
                None
            } else {
                Some(((u * 31) % 40) as u32)
            }
        })
        .collect();
    let eps = Eps::new(4.0).unwrap();
    for pem_config in [PemConfig::new(4), PemConfig::new(4).with_validity()] {
        let pem = Pem::new(d, pem_config).unwrap();
        let batch = pem
            .execute(
                eps,
                &Exec::batch().seed(55).threads(2),
                SliceSource::new(&items),
            )
            .unwrap();
        for chunk in [997, SHARD, n] {
            for threads in [1, 4] {
                let plan = Exec::stream().seed(55).threads(threads).chunk_size(chunk);
                let streamed = pem.execute(eps, &plan, SliceSource::new(&items)).unwrap();
                assert_eq!(
                    streamed.top, batch.top,
                    "validity={} chunk={chunk} threads={threads}",
                    pem_config.validity
                );
                assert_eq!(streamed.comm, batch.comm);
            }
        }
    }
}

#[test]
fn pem_sharded_execute_requires_sized_source() {
    struct Unsized;
    impl multiclass_ldp::oracles::stream::ReportSource for Unsized {
        type Item = Option<u32>;
        fn fill(&mut self, _: &mut Vec<Option<u32>>, _: usize) -> Result<usize> {
            Ok(0)
        }
    }
    let pem = Pem::new(64, PemConfig::new(2)).unwrap();
    let err = pem
        .execute(Eps::new(1.0).unwrap(), &Exec::stream().seed(1), Unsized)
        .unwrap_err();
    assert!(matches!(err, Error::InvalidParameter { .. }));
    // Sequential plans drain the source instead and do not need a size.
    assert!(
        pem.execute(Eps::new(1.0).unwrap(), &Exec::sequential().seed(1), Unsized)
            .is_ok(),
        "sequential plans work on unsized sources"
    );
}

#[test]
fn topk_stream_plans_match_batch_plans() {
    let domains = Domains::new(3, 64).unwrap();
    let data = sample_data(domains, 18_000);
    let config_k = TopKConfig::new(3, Eps::new(6.0).unwrap());
    for method in [
        TopKMethod::Hec,
        TopKMethod::PtsShuffled {
            validity: true,
            global: true,
            correlated: true,
        },
    ] {
        let batch = execute(
            method,
            config_k,
            domains,
            &Exec::batch().seed(31).threads(2),
            SliceSource::new(&data),
        )
        .unwrap();
        for threads in [1, 4] {
            let plan = Exec::stream().seed(31).threads(threads).chunk_size(4096);
            let streamed =
                execute(method, config_k, domains, &plan, SliceSource::new(&data)).unwrap();
            assert_eq!(
                streamed.per_class,
                batch.per_class,
                "{} threads={threads}",
                method.name()
            );
            assert_eq!(streamed.comm, batch.comm);
        }
    }
}
