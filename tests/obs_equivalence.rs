//! The observability non-interference net: metrics collection must be
//! invisible to every estimate, and the snapshots themselves must be
//! deterministic.
//!
//! Two claims are pinned here, across all four `Exec` modes:
//!
//! 1. **Bit-identity on/off.** A pipeline run with the global registry
//!    recording is bit-identical to the same run with recording off —
//!    nothing downstream of a counter or a span feeds back into an
//!    estimate.
//! 2. **Snapshot determinism.** Two identical runs produce identical
//!    snapshots modulo timing fields (`Snapshot::without_timing` strips
//!    exactly those); under an injected `ManualClock` the snapshots are
//!    identical outright, timing included.
//!
//! The registry, toggle and clock are process-wide, so every test here
//! serializes on one mutex.

use std::sync::Mutex;

use multiclass_ldp::obs;
use multiclass_ldp::prelude::*;
use multiclass_ldp::topk::{Pem, PemConfig};

static OBS_STATE: Mutex<()> = Mutex::new(());
static MANUAL: obs::ManualClock = obs::ManualClock::new();
static MONOTONIC: obs::MonotonicClock = obs::MonotonicClock::new();

const SHARD: usize = parallel::SHARD_SIZE;

fn sample_pairs(domains: Domains, n: usize) -> Vec<LabelItem> {
    (0..n)
        .map(|u| {
            LabelItem::new(
                (u % domains.classes() as usize) as u32,
                ((u * 7919) % domains.items() as usize) as u32,
            )
        })
        .collect()
}

/// The four execution modes, each as a fully pinned plan.
fn all_mode_plans(seed: u64) -> [(&'static str, Exec); 4] {
    [
        ("auto", Exec::seeded(seed).threads(4).chunk_size(SHARD + 1)),
        ("sequential", Exec::sequential().seed(seed)),
        ("batch", Exec::batch().seed(seed).threads(4)),
        (
            "stream",
            Exec::stream().seed(seed).threads(4).chunk_size(SHARD - 1),
        ),
    ]
}

/// Runs PTS-CP under `plan` with recording toggled as asked; returns the
/// estimate table as raw bits plus the snapshot recorded along the way.
fn run(
    plan: &Exec,
    data: &[LabelItem],
    domains: Domains,
    record: bool,
) -> (Vec<u64>, obs::Snapshot) {
    obs::reset();
    obs::set_enabled(record);
    let result = Framework::PtsCp { label_frac: 0.5 }
        .execute(
            Eps::new(2.0).unwrap(),
            domains,
            plan,
            SliceSource::new(data),
        )
        .unwrap();
    obs::set_enabled(false);
    let snap = obs::snapshot();
    obs::reset();
    let mut bits = Vec::new();
    for label in 0..domains.classes() {
        for item in 0..domains.items() {
            bits.push(result.table.get(label, item).to_bits());
        }
    }
    (bits, snap)
}

#[test]
fn metrics_on_and_off_are_bit_identical_in_every_mode() {
    let _guard = OBS_STATE.lock().unwrap_or_else(|p| p.into_inner());
    let domains = Domains::new(3, 32).unwrap();
    let data = sample_pairs(domains, SHARD + 700);
    for (mode, plan) in all_mode_plans(0x0B5_2025) {
        let (off, off_snap) = run(&plan, &data, domains, false);
        let (on, on_snap) = run(&plan, &data, domains, true);
        assert_eq!(off, on, "{mode}: recording metrics changed the estimates");
        assert!(off_snap.is_empty(), "{mode}: disabled run left a snapshot");
        assert!(
            on_snap.counters.contains_key("mcim_folds_total"),
            "{mode}: enabled run recorded nothing"
        );
    }
}

#[test]
fn identical_runs_snapshot_identically_modulo_timing() {
    let _guard = OBS_STATE.lock().unwrap_or_else(|p| p.into_inner());
    let domains = Domains::new(3, 32).unwrap();
    let data = sample_pairs(domains, SHARD + 700);
    for (mode, plan) in all_mode_plans(0x0B5_2026) {
        // Real clock vs a manual clock at rest: every timing field
        // differs, everything work-derived must not.
        obs::set_clock(&MONOTONIC);
        let (_, real) = run(&plan, &data, domains, true);
        obs::set_clock(&MANUAL);
        let (_, manual_a) = run(&plan, &data, domains, true);
        let (_, manual_b) = run(&plan, &data, domains, true);
        assert_eq!(
            real.without_timing(),
            manual_a.without_timing(),
            "{mode}: snapshots diverged beyond timing fields"
        );
        // Under the injected clock the whole snapshot is reproducible,
        // histogram sums and buckets included.
        assert_eq!(
            manual_a, manual_b,
            "{mode}: identical runs under a manual clock diverged"
        );
        // Sanity: the timing strip keeps counts but zeroes durations.
        for (key, h) in &manual_a.histograms {
            assert!(h.count > 0, "{mode}: {key} observed nothing");
            assert_eq!(h.sum, 0, "{mode}: manual clock at rest must sum to 0");
        }
    }
    obs::set_clock(&MONOTONIC);
}

#[test]
fn pem_round_counters_are_work_derived_and_mode_invariant() {
    let _guard = OBS_STATE.lock().unwrap_or_else(|p| p.into_inner());
    let items: Vec<Option<u32>> = (0..SHARD + 2200)
        .map(|u| (u % 5 != 0).then_some(((u * 31) % 40) as u32))
        .collect();
    let pem = Pem::new(128, PemConfig::new(4)).unwrap();
    obs::set_clock(&MANUAL);
    let mut per_mode = Vec::new();
    for (mode, plan) in all_mode_plans(0x0B5_2027) {
        obs::reset();
        obs::set_enabled(true);
        let result = pem
            .execute(Eps::new(4.0).unwrap(), &plan, SliceSource::new(&items))
            .unwrap();
        obs::set_enabled(false);
        let snap = obs::snapshot();
        obs::reset();
        per_mode.push((mode, result.top.clone(), snap.without_timing()));
    }
    let (first_mode, first_top, first_snap) = &per_mode[0];
    for (mode, top, snap) in &per_mode[1..] {
        assert_eq!(top, first_top, "{mode} vs {first_mode}: results");
        assert_eq!(
            snap.counters.get("mcim_pem_rounds_total"),
            first_snap.counters.get("mcim_pem_rounds_total"),
            "{mode} vs {first_mode}: PEM round counts"
        );
    }
    assert!(
        first_snap.counters.get("mcim_pem_rounds_total").copied() > Some(0),
        "PEM recorded no rounds"
    );
}
