//! Offline shim for the subset of the `proptest` API used by this workspace.
//!
//! The [`proptest!`] macro runs each property for a fixed number of
//! deterministic cases (default 64, override with `PROPTEST_CASES`) instead
//! of upstream's adaptive search, and there is no shrinking: a failing case
//! panics immediately, reporting the case index so the run can be replayed
//! with the same deterministic stream.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{distr::SampleUniform, Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// A source of random test inputs of type `Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// Strategy producing any value of a primitive type (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Returns a strategy over the full domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_prim {
    ($($ty:ty),+) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn sample_value(&self, rng: &mut StdRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}
any_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample_value(&self, rng: &mut StdRng) -> bool {
        rng.random()
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Rng, StdRng, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Produces vectors whose elements come from `element` and whose length
    /// is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Namespace re-exports so call sites can write `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-case RNG: the stream depends only on the case index.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(0xC0FF_EE00_0000_0000 ^ u64::from(case))
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` that runs the body for [`cases`] deterministic draws.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::cases() {
                    let mut __rng = $crate::case_rng(__case);
                    $(let $arg = $crate::Strategy::sample_value(&($strategy), &mut __rng);)+
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest case {}/{} failed in {}",
                            __case,
                            $crate::cases(),
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property (no shrinking; panics like
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { ::std::assert!($($tokens)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { ::std::assert_eq!($($tokens)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { ::std::assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The harness delivers in-range values and runs multiple cases.
        #[test]
        fn ranges_are_respected(x in 3u32..17, f in 0.25f64..0.75, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..9).contains(&n));
        }

        /// `any` and collection strategies compose.
        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<u64>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    #[test]
    fn cases_is_positive() {
        assert!(super::cases() >= 1);
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        assert_eq!(super::case_rng(5).next_u64(), super::case_rng(5).next_u64());
    }
}
