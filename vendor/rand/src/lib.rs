//! Offline shim for the subset of the `rand` 0.9 API used by this workspace.
//!
//! See `vendor/README.md` for scope and caveats. The headline difference
//! from upstream: [`rngs::StdRng`] is xoshiro256++ (seeded via SplitMix64)
//! rather than ChaCha12, so its byte stream differs from the real crate's.
//! Every consumer in this workspace relies only on seed-determinism and
//! statistical quality, both of which hold.

#![forbid(unsafe_code)]

pub mod distr;
pub mod rngs;

pub use distr::{Distribution, StandardUniform};
use distr::{SampleRange, SampleUniform};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value with the standard-uniform distribution for its type
    /// (floats uniform in `[0, 1)`, integers uniform over the full range).
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.random::<f64>() < p
    }

    /// Samples from an explicit distribution object.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanded with SplitMix64
    /// exactly as upstream `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood 2014), upstream's expansion.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "exclusive range missed a value");
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..=9)] = true;
        }
        assert!(seen.iter().all(|&s| s), "inclusive range missed a value");
    }

    #[test]
    fn random_range_signed_and_float() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f: f64 = rng.random_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_respects_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn random_bool_rejects_invalid_p() {
        StdRng::seed_from_u64(0).random_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn random_range_rejects_empty() {
        StdRng::seed_from_u64(0).random_range(5u32..5);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.random_range(0..100u32)
        }
        let mut rng = StdRng::seed_from_u64(9);
        assert!(draw(&mut rng) < 100);
    }

    #[test]
    fn full_range_u64_inclusive() {
        let mut rng = StdRng::seed_from_u64(11);
        // span == 2^64 must not overflow or panic.
        let _: u64 = rng.random_range(0u64..=u64::MAX);
    }
}
