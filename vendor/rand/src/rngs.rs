//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic RNG: **xoshiro256++**
/// (Blackman & Vigna 2019).
///
/// Upstream `rand`'s `StdRng` is ChaCha12; the two produce different
/// streams, but both are seed-deterministic, which is the only property the
/// workspace relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro's state must not be all-zero; the SplitMix64 expansion in
        // `seed_from_u64` never produces that, but `from_seed` can be handed
        // anything.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}

/// A small, fast generator; in this shim it is the same engine as [`StdRng`].
pub type SmallRng = StdRng;
