//! Distributions and uniform-range sampling (mirrors `rand::distr`).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A type that can produce values of `T` given an RNG.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution per type: floats in `[0, 1)`,
/// integers over their full range, `bool` fair.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardUniform;

impl Distribution<f64> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty),+) => {$(
        impl Distribution<$ty> for StandardUniform {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that support uniform sampling over a caller-supplied range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`). The caller guarantees the range
    /// is non-empty.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),+) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128 + if inclusive { 1 } else { 0 }) as u128;
                debug_assert!(span > 0);
                // `span == 2^64` only for a full-width 64-bit inclusive
                // range, where the multiply-shift below is exact anyway.
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + offset) as $ty
            }
        }
    )+};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($ty:ty),+) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit: $ty = StandardUniform.sample(rng);
                low + unit * (high - low)
            }
        }
    )+};
}
uniform_float!(f32, f64);

/// Range forms accepted by `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from empty range");
        T::sample_range(rng, start, end, true)
    }
}

/// Uniform-range helpers namespace, mirroring `rand::distr::uniform`.
pub mod uniform {
    pub use super::{SampleRange, SampleUniform};
}
