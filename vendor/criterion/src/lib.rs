//! Offline shim for the subset of the `criterion` API used by this
//! workspace's micro-benchmarks.
//!
//! It measures wall-clock time over `sample_size` samples after a short
//! warm-up and prints mean ± spread per benchmark. There is no statistical
//! machinery, no plots, and no baseline comparison — just honest timing
//! with the upstream call-site API, so the benches compile and run without
//! registry access.

#![forbid(unsafe_code)]
// Timing shim: wall-clock measurement is the crate's whole job.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// shim re-runs setup per iteration regardless, excluding it from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&name.into(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; drives the timed iterations.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f` in a loop.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm up and estimate a per-sample iteration count targeting
        // ~1 ms so cheap routines still get a stable reading.
        let warmup = Instant::now();
        let mut warm_iters = 0u64;
        while warmup.elapsed() < Duration::from_millis(20) {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warmup.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters = ((1e-3 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    let samples = &bencher.samples_ns;
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{label:<48} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a named runner, in both upstream
/// syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("iter", |b| b.iter(|| black_box(1u64 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(shim_benches, quick);

    #[test]
    fn group_and_bench_run() {
        shim_benches();
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(2e9).contains(" s"));
    }
}
